"""ZSpec: the declarative invariant registry for cache arrays.

Every correctness property the reproduction relies on — walk-tree
well-formedness, map↔array synchronization, tag uniqueness, block
conservation, and the two-phase protocol's staleness/atomicity
contract — lives here as a named :class:`Invariant` with a
machine-checkable predicate. Three backends consume the registry:

- :class:`~repro.analysis.sanitizer.SanitizedArray` is a thin runtime
  driver: it builds the scope-appropriate check context around each
  intercepted array operation and raises
  :class:`~repro.analysis.sanitizer.InvariantViolation` for the first
  invariant whose predicate reports a violation.
- :mod:`repro.analysis.modelcheck` exhaustively enumerates access
  sequences over tiny geometries and evaluates every state-scope
  invariant (plus reference↔turbo bit-identity) at each step.
- The planned fault-injection campaign (ROADMAP item 5) reuses the
  registry as its detector vocabulary: an injected fault is *detected*
  when some registered invariant fires.

Invariants are grouped by *scope* — the operation whose aftermath they
constrain:

``walk``
    One candidate of a freshly built replacement/reinsertion walk.
``commit``
    The state right after a successful ``commit_replacement``.
``evict``
    The state right after ``evict_address``.
``state``
    Whole-array consistency, checkable at any quiescent point.
``phase``
    One observed commit *attempt* (two-phase protocol): a commit must
    reject stale walk paths, and a rejected commit must not corrupt
    state (paper Section III-D's benign-race restart discipline).
``thread``
    One observed shared-field access or lock acquisition in the serve
    layer, evaluated by ZRace's dynamic lockset backend
    (:mod:`repro.analysis.lockset`): shared-modified fields must keep
    a non-empty candidate lockset, and observed acquisitions must
    form no cycle.

Checks are pure observers: they never mutate the array, and they
return a human-readable detail string on violation (``None`` when the
invariant holds). The registry preserves definition order, which is
the order the sanitizer historically applied its checks in — tests
that plant a single corruption rely on that precedence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Set, Tuple

from repro.core.base import (
    CacheArray,
    Candidate,
    CommitResult,
    Position,
    Replacement,
)

#: The invariant classes a violation is tagged with. The first eleven
#: predate the registry (SanitizedArray's original taxonomy);
#: ``phase-stale``/``commit-order`` cover the two-phase protocol's
#: staleness and atomicity contract; ``lockset-race``/``lock-order``
#: cover the serve layer's threading discipline (ZRace's dynamic
#: lockset backend).
VIOLATION_KINDS = (
    "walk-cycle",
    "walk-level",
    "walk-parent",
    "walk-repeat",
    "walk-stale",
    "walk-bounds",
    "walk-hash",
    "map-desync",
    "duplicate-tag",
    "hash-placement",
    "conservation",
    "phase-stale",
    "commit-order",
    "lockset-race",
    "lock-order",
)

SCOPE_WALK = "walk"
SCOPE_COMMIT = "commit"
SCOPE_EVICT = "evict"
SCOPE_STATE = "state"
SCOPE_PHASE = "phase"
SCOPE_THREAD = "thread"

#: valid values for :attr:`Invariant.scope`
SCOPES = (
    SCOPE_WALK,
    SCOPE_COMMIT,
    SCOPE_EVICT,
    SCOPE_STATE,
    SCOPE_PHASE,
    SCOPE_THREAD,
)


def iter_path(cand: Candidate, limit: int) -> Iterator[Candidate]:
    """Walk parent links from ``cand`` to the root, yielding each node.

    Stops after ``limit`` nodes so a corrupted cyclic tree cannot hang
    the checker; callers detect the truncation as a cycle.
    """
    node: Optional[Candidate] = cand
    for _ in range(limit):
        if node is None:
            return
        yield node
        node = node.parent


# ---------------------------------------------------------------------------
# Check contexts: one per scope, built by the driver around an operation.
# ---------------------------------------------------------------------------


#: sentinel for "caller did not hoist this walk-level constant"
_UNSET = object()


class WalkCheck:
    """Context for ``walk``-scope invariants: one candidate of one walk.

    The sanitizer builds one per candidate on the hot path, so the
    constructor accepts the per-*walk* constants (``cap``, ``hashes``)
    pre-hoisted and builds the ancestor chain eagerly in a single
    traversal — several invariants read :attr:`path`, and a lazy
    property here costs a measurable fraction of the whole sanitized
    run.
    """

    __slots__ = ("array", "repl", "cand", "cap", "hashes", "path",
                 "cycle_detail")

    def __init__(
        self,
        array: CacheArray,
        repl: Replacement,
        cand: Candidate,
        cap: Optional[int] = None,
        hashes: Any = _UNSET,
    ) -> None:
        self.array = array
        self.repl = repl
        self.cand = cand
        #: ancestor-chain length cap; anything longer is a cycle
        self.cap = (
            len(repl.candidates) + array.num_ways + 1 if cap is None else cap
        )
        self.hashes = (
            getattr(array, "hashes", None) if hashes is _UNSET else hashes
        )
        #: set while building :attr:`path` when the chain is cyclic
        self.cycle_detail: Optional[str] = None
        # Inline parent-chase (not :func:`iter_path`): chains are 1-3
        # nodes long, so generator setup would dominate the walk.
        seen: Set[int] = set()
        path: List[Candidate] = []
        node: Optional[Candidate] = cand
        for _ in range(self.cap):
            if node is None:
                break
            if id(node) in seen:
                self.cycle_detail = (
                    f"ancestor chain of candidate at {cand.position} "
                    f"revisits a node (level {node.level})"
                )
                break
            seen.add(id(node))
            path.append(node)
            node = node.parent
        else:
            if path[-1].parent is not None:
                self.cycle_detail = (
                    f"ancestor chain of candidate at {cand.position} "
                    f"exceeds {self.cap} nodes without reaching a root"
                )
        #: candidate-to-root chain (truncated at :attr:`cap` on cycles)
        self.path = path


class CommitCheck:
    """Context for ``commit``-scope invariants: one finished commit."""

    def __init__(
        self,
        array: CacheArray,
        repl: Replacement,
        chosen: Candidate,
        result: CommitResult,
        len_before: int,
        was_resident: bool,
    ) -> None:
        self.array = array
        self.repl = repl
        self.chosen = chosen
        self.result = result
        self.len_before = len_before
        self.was_resident = was_resident
        root = chosen
        for root in iter_path(
            chosen, len(repl.candidates) + array.num_ways + 1
        ):
            pass
        #: the relocation path's level-0 end, where the incoming lands
        self.root = root


class EvictCheck:
    """Context for ``evict``-scope invariants: one forced eviction."""

    def __init__(self, array: CacheArray, address: int) -> None:
        self.array = array
        self.address = address


class StateCheck:
    """Context for ``state``-scope invariants: whole-array consistency."""

    def __init__(self, array: CacheArray) -> None:
        self.array = array

    def cells(self) -> Iterator[Tuple[Position, int]]:
        """Every occupied line as ``(position, address)``, way-major."""
        array = self.array
        for way in range(array.num_ways):
            line = array._lines[way]
            for index in range(array.lines_per_way):
                addr = line[index]
                if addr is not None:
                    yield Position(way, index), addr


class PhaseCheck:
    """Context for ``phase``-scope invariants: one commit *attempt*.

    Built by the driver around ``commit_replacement`` /
    ``commit_reinsertion``, whether the inner commit succeeded
    (``error is None``) or raised a ``RuntimeError``. ``stale_detail``
    records — *before* the attempt — whether the chosen path had gone
    stale, exactly as :meth:`~repro.core.base.CacheArray.check_path`
    would judge it.
    """

    def __init__(
        self,
        array: CacheArray,
        repl: Replacement,
        chosen: Candidate,
        *,
        stale_detail: Optional[str],
        error: Optional[BaseException],
        len_before: int,
        len_after: int,
        incoming_resident_before: bool,
        incoming_resident_after: bool,
    ) -> None:
        self.array = array
        self.repl = repl
        self.chosen = chosen
        self.stale_detail = stale_detail
        self.error = error
        self.len_before = len_before
        self.len_after = len_after
        self.incoming_resident_before = incoming_resident_before
        self.incoming_resident_after = incoming_resident_after


class ThreadCheck:
    """Context for ``thread``-scope invariants: one race observation.

    Built by :class:`~repro.analysis.lockset.LocksetSanitizer` around
    a shared-field access (Eraser-style state machine) or a lock
    acquisition (order graph). Exactly one of the two shapes is
    populated: field observations carry ``state``/``lockset``/
    ``threads`` with ``cycle is None``; acquisition observations carry
    the offending ``cycle`` path.
    """

    __slots__ = ("field", "op", "state", "lockset", "threads", "cycle")

    def __init__(
        self,
        *,
        field: str = "",
        op: str = "",
        state: str = "",
        lockset: frozenset = frozenset(),
        threads: int = 0,
        cycle: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.field = field
        self.op = op
        self.state = state
        self.lockset = lockset
        self.threads = threads
        self.cycle = cycle


def stale_path_detail(array: CacheArray, chosen: Candidate) -> Optional[str]:
    """Why ``chosen``'s recorded path is stale, or None if accurate.

    Mirrors :meth:`~repro.core.base.CacheArray.check_path` verbatim so
    the ``phase-stale`` invariant judges staleness by the same standard
    the array's own guard does.
    """
    for node in chosen.path_to_root():
        if array._read(node.position) != node.address:
            return (
                f"position {node.position} no longer holds {node.address!r}"
            )
    return None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Invariant:
    """One named, machine-checkable correctness property.

    Attributes
    ----------
    name:
        Unique registry key (kebab-case).
    kind:
        The :data:`VIOLATION_KINDS` entry a failure is tagged with.
    scope:
        Which check context the predicate consumes (:data:`SCOPES`).
    description:
        One-line statement of the property, quotable in reports.
    check:
        Predicate: context -> detail string on violation, else None.
    """

    name: str
    kind: str
    scope: str
    description: str
    check: Callable[..., Optional[str]]


#: name -> invariant, in definition (= historical check) order
INVARIANT_REGISTRY: "dict[str, Invariant]" = {}


def register_invariant(
    name: str, kind: str, scope: str, description: str
) -> Callable[[Callable[..., Optional[str]]], Callable[..., Optional[str]]]:
    """Decorator registering a check function as a named invariant."""
    if kind not in VIOLATION_KINDS:
        raise ValueError(f"unknown violation kind: {kind!r}")
    if scope not in SCOPES:
        raise ValueError(f"unknown invariant scope: {scope!r}")

    def deco(
        fn: Callable[..., Optional[str]]
    ) -> Callable[..., Optional[str]]:
        if name in INVARIANT_REGISTRY:
            raise ValueError(f"duplicate invariant name: {name!r}")
        INVARIANT_REGISTRY[name] = Invariant(
            name=name, kind=kind, scope=scope, description=description,
            check=fn,
        )
        return fn

    return deco


def default_invariants() -> Tuple[Invariant, ...]:
    """Every registered invariant, in definition order."""
    return tuple(INVARIANT_REGISTRY.values())


def invariants_for(scope: str) -> Tuple[Invariant, ...]:
    """The registered invariants of one scope, in definition order."""
    if scope not in SCOPES:
        raise ValueError(f"unknown invariant scope: {scope!r}")
    return tuple(
        inv for inv in INVARIANT_REGISTRY.values() if inv.scope == scope
    )


# ---------------------------------------------------------------------------
# Walk-scope invariants (checked per candidate, definition order).
# ---------------------------------------------------------------------------


@register_invariant(
    "walk-in-bounds", "walk-bounds", SCOPE_WALK,
    "every candidate position lies inside the array geometry",
)
def _walk_in_bounds(ctx: WalkCheck) -> Optional[str]:
    pos = ctx.cand.position
    if not (
        0 <= pos.way < ctx.array.num_ways
        and 0 <= pos.index < ctx.array.lines_per_way
    ):
        return f"candidate position {pos} out of bounds"
    return None


@register_invariant(
    "walk-acyclic", "walk-cycle", SCOPE_WALK,
    "ancestor chains are acyclic and terminate at a parentless root",
)
def _walk_acyclic(ctx: WalkCheck) -> Optional[str]:
    return ctx.cycle_detail


@register_invariant(
    "walk-level-monotone", "walk-level", SCOPE_WALK,
    "roots sit at level 0 and levels increase by exactly one per link",
)
def _walk_level_monotone(ctx: WalkCheck) -> Optional[str]:
    for node in ctx.path:
        parent = node.parent
        if parent is None:
            if node.level != 0:
                return (
                    f"root candidate at {node.position} has level "
                    f"{node.level}, expected 0"
                )
        elif node.level != parent.level + 1:
            return (
                f"candidate at {node.position} has level {node.level} "
                f"but its parent has level {parent.level}"
            )
    return None


@register_invariant(
    "walk-parent-occupied", "walk-parent", SCOPE_WALK,
    "only occupied slots are expanded into deeper candidates",
)
def _walk_parent_occupied(ctx: WalkCheck) -> Optional[str]:
    for node in ctx.path:
        parent = node.parent
        if parent is not None and parent.address is None:
            return (
                f"candidate at {node.position} expands an empty slot "
                f"at {parent.position}"
            )
    return None


@register_invariant(
    "walk-path-distinct", "walk-repeat", SCOPE_WALK,
    "a valid candidate's relocation path never revisits a position",
)
def _walk_path_distinct(ctx: WalkCheck) -> Optional[str]:
    if ctx.cand.valid:
        positions = [node.position for node in ctx.path]
        if len(set(positions)) != len(positions):
            return (
                f"valid candidate at {ctx.cand.position} has a relocation "
                "path that revisits a position (must be flagged invalid)"
            )
    return None


@register_invariant(
    "walk-records-current", "walk-stale", SCOPE_WALK,
    "recorded candidate contents match the array (walks do not mutate)",
)
def _walk_records_current(ctx: WalkCheck) -> Optional[str]:
    pos = ctx.cand.position
    actual = ctx.array._read(pos)
    if actual != ctx.cand.address:
        return (
            f"candidate records {ctx.cand.address!r} at {pos} but the "
            f"array holds {actual!r}"
        )
    return None


@register_invariant(
    "walk-hash-discipline", "walk-hash", SCOPE_WALK,
    "each candidate sits at its way's hash of the relocating address",
)
def _walk_hash_discipline(ctx: WalkCheck) -> Optional[str]:
    if ctx.hashes is None:
        return None
    cand = ctx.cand
    pos = cand.position
    source = cand.parent.address if cand.parent else ctx.repl.incoming
    if source is not None:
        expected = ctx.hashes[pos.way](source)
        if pos.index != expected:
            return (
                f"candidate at {pos} is not the way-{pos.way} hash of "
                f"{source:#x} (expected index {expected})"
            )
    return None


# ---------------------------------------------------------------------------
# Commit-scope invariants.
# ---------------------------------------------------------------------------


@register_invariant(
    "commit-conservation", "conservation", SCOPE_COMMIT,
    "a commit changes the resident count by install minus eviction",
)
def _commit_conservation(ctx: CommitCheck) -> Optional[str]:
    expected = ctx.len_before + (0 if ctx.was_resident else 1)
    if ctx.result.evicted is not None:
        expected -= 1
    if len(ctx.array) != expected:
        return (
            f"resident count {len(ctx.array)} after commit, expected "
            f"{expected} (before={ctx.len_before}, "
            f"evicted={ctx.result.evicted!r})"
        )
    return None


@register_invariant(
    "commit-evicted-gone", "conservation", SCOPE_COMMIT,
    "the evicted block is fully removed by its commit",
)
def _commit_evicted_gone(ctx: CommitCheck) -> Optional[str]:
    evicted = ctx.result.evicted
    if evicted is not None and ctx.array.lookup(evicted) is not None:
        return f"evicted block {evicted:#x} is still resident"
    return None


@register_invariant(
    "commit-incoming-resident", "conservation", SCOPE_COMMIT,
    "the incoming block is resident after its commit",
)
def _commit_incoming_resident(ctx: CommitCheck) -> Optional[str]:
    if ctx.array.lookup(ctx.repl.incoming) is None:
        return (
            f"incoming block {ctx.repl.incoming:#x} not resident after "
            "commit"
        )
    return None


@register_invariant(
    "commit-root-placement", "map-desync", SCOPE_COMMIT,
    "the incoming block lands at the relocation path's root position",
)
def _commit_root_placement(ctx: CommitCheck) -> Optional[str]:
    pos = ctx.array.lookup(ctx.repl.incoming)
    if pos is not None and pos != ctx.root.position:
        return (
            f"incoming block {ctx.repl.incoming:#x} at {pos}, expected "
            f"the path root {ctx.root.position}"
        )
    return None


@register_invariant(
    "commit-path-placement", "map-desync", SCOPE_COMMIT,
    "every relocated block moved exactly one step down the path",
)
def _commit_path_placement(ctx: CommitCheck) -> Optional[str]:
    node = ctx.chosen
    while node.parent is not None:
        moved = node.parent.address
        if moved is not None and ctx.array.lookup(moved) != node.position:
            return (
                f"relocated block {moved:#x} is not at {node.position} "
                "after commit"
            )
        node = node.parent
    return None


# ---------------------------------------------------------------------------
# Evict-scope invariants.
# ---------------------------------------------------------------------------


@register_invariant(
    "evict-clears-map", "map-desync", SCOPE_EVICT,
    "a forced eviction removes the block from the position map",
)
def _evict_clears_map(ctx: EvictCheck) -> Optional[str]:
    if ctx.array.lookup(ctx.address) is not None:
        return f"evicted block {ctx.address:#x} still resolves in the map"
    return None


# ---------------------------------------------------------------------------
# State-scope invariants (whole-array scans).
# ---------------------------------------------------------------------------


@register_invariant(
    "state-tag-unique", "duplicate-tag", SCOPE_STATE,
    "no block address is stored in more than one line",
)
def _state_tag_unique(ctx: StateCheck) -> Optional[str]:
    seen: "dict[int, Position]" = {}
    for pos, addr in ctx.cells():
        if addr in seen:
            return f"block {addr:#x} stored at both {seen[addr]} and {pos}"
        seen[addr] = pos
    return None


@register_invariant(
    "state-map-line-sync", "map-desync", SCOPE_STATE,
    "the address→position map and the line arrays agree exactly",
)
def _state_map_line_sync(ctx: StateCheck) -> Optional[str]:
    stored: Set[int] = set()
    for pos, addr in ctx.cells():
        stored.add(addr)
        mapped = ctx.array._pos.get(addr)
        if mapped != pos:
            return (
                f"line {pos} holds {addr:#x} but the map says {mapped!r}"
            )
    stale = set(ctx.array._pos) - stored
    if stale:
        addr = next(iter(stale))
        return (
            f"map entry {addr:#x} -> {ctx.array._pos[addr]} points at a "
            "line that does not hold it"
        )
    return None


@register_invariant(
    "state-hash-placement", "hash-placement", SCOPE_STATE,
    "every resident block sits at its way's hash of its address",
)
def _state_hash_placement(ctx: StateCheck) -> Optional[str]:
    hashes = getattr(ctx.array, "hashes", None)
    if hashes is None:
        return None
    for addr, pos in ctx.array._pos.items():
        expected = hashes[pos.way](addr)
        if pos.index != expected:
            return (
                f"block {addr:#x} at index {pos.index} of way {pos.way}, "
                f"but hashes to {expected}"
            )
    return None


# ---------------------------------------------------------------------------
# Phase-scope invariants (two-phase staleness / atomicity contract).
# ---------------------------------------------------------------------------


@register_invariant(
    "twophase-stale-path-guard", "phase-stale", SCOPE_PHASE,
    "a commit over a stale walk path must be rejected, never applied",
)
def _twophase_stale_path_guard(ctx: PhaseCheck) -> Optional[str]:
    if ctx.error is None and ctx.stale_detail is not None:
        return (
            f"commit of {ctx.repl.incoming:#x} succeeded on a stale walk "
            f"path: {ctx.stale_detail}"
        )
    return None


@register_invariant(
    "twophase-commit-atomic", "commit-order", SCOPE_PHASE,
    "a rejected commit leaves state unchanged (reinsertion may only "
    "have evicted its own incoming block)",
)
def _twophase_commit_atomic(ctx: PhaseCheck) -> Optional[str]:
    if ctx.error is None:
        return None
    if (
        ctx.len_after == ctx.len_before
        and ctx.incoming_resident_after == ctx.incoming_resident_before
    ):
        return None
    # A reinsertion commit evicts its incoming block before relocating;
    # staleness detected after that prefix legitimately leaves the block
    # out (the controller's retry path re-walks and re-places it).
    if (
        ctx.len_after == ctx.len_before - 1
        and ctx.incoming_resident_before
        and not ctx.incoming_resident_after
    ):
        return None
    return (
        f"rejected commit of {ctx.repl.incoming:#x} mutated state: "
        f"resident count {ctx.len_before} -> {ctx.len_after}, incoming "
        f"resident {ctx.incoming_resident_before} -> "
        f"{ctx.incoming_resident_after}"
    )


# ---------------------------------------------------------------------------
# Thread-scope invariants (ZRace's dynamic lockset backend).
# ---------------------------------------------------------------------------


@register_invariant(
    "lockset-discipline", "lockset-race", SCOPE_THREAD,
    "a field modified by multiple threads keeps a non-empty candidate "
    "lockset (Eraser's shared-modified rule)",
)
def _lockset_discipline(ctx: ThreadCheck) -> Optional[str]:
    if ctx.cycle is not None:
        return None
    if ctx.state == "shared-modified" and not ctx.lockset:
        return (
            f"field '{ctx.field}' reached shared-modified across "
            f"{ctx.threads} thread(s) with an empty candidate lockset "
            f"(last op: {ctx.op})"
        )
    return None


@register_invariant(
    "lock-order-acyclic", "lock-order", SCOPE_THREAD,
    "observed lock acquisitions never close a cycle in the "
    "acquisition-order graph",
)
def _lock_order_acyclic(ctx: ThreadCheck) -> Optional[str]:
    if ctx.cycle is None:
        return None
    return (
        "lock acquisition closes an order cycle: "
        + " -> ".join(ctx.cycle)
    )
