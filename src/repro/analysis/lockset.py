"""ZRace's dynamic backend: an Eraser-style lockset sanitizer.

The static rules (ZS110–ZS113) prove the serve layer's locking
discipline from source; this module *watches* it. A
:class:`LocksetSanitizer` instruments a live
:class:`~repro.serve.shard.CacheShard` — its lock, its payload dict,
its recency buffer, and its two-phase zcache — and replays Eraser's
per-field state machine over every observed access::

    virgin → exclusive(owner) → shared / shared-modified

A field's *candidate lockset* starts at ⊤ (``None``: "any lock could
be the guard") and is intersected with the acquiring thread's held
locks at every participating access once the field leaves its
first-owner ``exclusive`` state. A field that reaches
``shared-modified`` with an **empty** candidate lockset is a data
race: two threads mutate it and no common lock protects them.

The shard's sanctioned lock-free idioms are encoded as per-field
*policies*, mirroring the static rules' sanctioned-atomic table:

``write-locked`` (``_entries``, ``zcache``)
    Lock-free reads are the design (``dict.get`` is GIL-atomic;
    ``prepare_fill`` is a re-validated off-lock read), so reads do
    not participate. Every write does.
``atomic-append`` (``_recency``)
    GIL-atomic ``list.append`` from readers is the design, so appends
    do not participate. Rebinding the buffer (the drain's swap) is a
    write and does.

Lock acquisitions feed a second detector: an *acquisition-order
graph*. Each acquire adds edges from every lock the thread already
holds to the new lock; an edge that closes a cycle — including the
self-edge of re-acquiring a non-reentrant lock — is a potential
deadlock. Both detectors evaluate their observations through the
thread-scope invariants of :mod:`repro.analysis.spec`
(``lockset-discipline``, ``lock-order-acyclic``), so the registry
stays the single vocabulary for every checker in the repo.

Run it via ``zcache-repro check --lockset`` or the serve smoke
(``scripts/serve_smoke.py``), both of which drive threaded traffic
through an instrumented shard and assert zero reports — then plant an
unlocked shard and assert the race *is* reported.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.sanitizer import InvariantViolation
from repro.analysis.spec import SCOPE_THREAD, ThreadCheck, invariants_for

#: per-field access policies (the dynamic sanctioned-atomic table)
POLICY_WRITE_LOCKED = "write-locked"
POLICY_ATOMIC_APPEND = "atomic-append"

#: zcache methods that mutate array/policy state — the dynamic twin of
#: the static pass's ``_MUTATING_CALLS`` table
_ZC_WRITES = frozenset({
    "access",
    "invalidate",
    "commit_prepared",
    "commit_replacement",
    "commit_reinsertion",
    "evict_address",
    "absorb_writeback",
})

#: dict mutators intercepted on the payload store
_DICT_WRITES = ("__setitem__", "__delitem__", "pop", "popitem", "clear",
                "update", "setdefault")


@dataclass(frozen=True)
class LocksetReport:
    """One violation observed by the dynamic checker."""

    invariant: str
    kind: str
    detail: str
    field: str
    thread: str
    state: str


class _FieldState:
    """Eraser's per-field state machine."""

    __slots__ = ("state", "owner", "lockset", "threads", "writes", "reads")

    def __init__(self) -> None:
        self.state = "virgin"
        self.owner: Optional[int] = None
        #: ``None`` is ⊤ — refinement starts on the first cross-thread
        #: access, never before
        self.lockset: Optional[Set[str]] = None
        self.threads: Set[int] = set()
        self.writes = 0
        self.reads = 0

    def access(self, tid: int, held: FrozenSet[str], is_write: bool) -> None:
        self.threads.add(tid)
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        if self.state == "virgin":
            self.state = "exclusive"
            self.owner = tid
            return
        if self.state == "exclusive":
            if tid == self.owner:
                return
            self.state = "shared-modified" if is_write else "shared"
            self.lockset = set(held)
            return
        if is_write:
            self.state = "shared-modified"
        assert self.lockset is not None
        self.lockset &= held


class _TrackingLock:
    """Wrapper around a ``threading.Lock`` that reports to the sanitizer.

    Quacks like the lock it wraps (``acquire``/``release``/context
    manager/``locked``) so it can be dropped into ``shard.lock``
    unnoticed. A re-acquisition by the holding thread raises
    *immediately* instead of forwarding: the inner lock is
    non-reentrant, so forwarding would hang the process the checker is
    trying to protect.
    """

    __slots__ = ("name", "_inner", "_san")

    def __init__(self, name: str, inner: Any, san: "LocksetSanitizer") -> None:
        self.name = name
        self._inner = inner
        self._san = san

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._san._before_acquire(self.name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._san._after_acquire(self.name)
        return got

    def release(self) -> None:
        self._san._on_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "_TrackingLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.release()
        return False


class _InstrumentedDict(dict):
    """Payload-store dict reporting mutations (policy: write-locked)."""

    # dict subclassing keeps every read on the C fast path: only the
    # mutators are overridden, reads are sanctioned lock-free.
    __slots__ = ("_san", "_field")

    def __init__(self, data: dict, san: "LocksetSanitizer",
                 field: str) -> None:
        self._san = san
        self._field = field
        super().__init__(data)


def _dict_write(name: str):
    inner = getattr(dict, name)

    def method(self: _InstrumentedDict, *args: Any, **kwargs: Any) -> Any:
        self._san._field_access(self._field, is_write=True, op=name)
        return inner(self, *args, **kwargs)

    method.__name__ = name
    return method


for _name in _DICT_WRITES:
    setattr(_InstrumentedDict, _name, _dict_write(_name))


class _InstrumentedList(list):
    """Recency buffer reporting rebinds only (policy: atomic-append).

    ``append`` is the sanctioned GIL-atomic reader-side idiom, so the
    list itself intercepts nothing — the *rebind* of the attribute
    (the drain's buffer swap) is the participating write, caught by
    the tracked property the sanitizer installs on the shard class.
    """

    __slots__ = ("_san", "_field")

    def __init__(self, data: list, san: "LocksetSanitizer",
                 field: str) -> None:
        self._san = san
        self._field = field
        super().__init__(data)


class _ZCacheProxy:
    """Forwarding proxy reporting mutating zcache calls as writes."""

    def __init__(self, inner: Any, san: "LocksetSanitizer") -> None:
        self._inner = inner
        self._san = san

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._inner, name)
        if name in _ZC_WRITES:
            san = self._san

            def traced(*args: Any, **kwargs: Any) -> Any:
                san._field_access("zcache", is_write=True, op=name)
                return attr(*args, **kwargs)

            return traced
        return attr

    # Special methods bypass __getattr__; the shard uses both.
    def __contains__(self, address: int) -> bool:
        return address in self._inner

    def __len__(self) -> int:
        return len(self._inner)


class LocksetSanitizer:
    """Instrument a :class:`CacheShard` with the dynamic race checker.

    Parameters
    ----------
    shard:
        The shard to instrument, in place: its lock, payload dict,
        recency buffer and zcache are replaced with tracking wrappers
        and its class is swapped for a dynamic subclass whose
        ``_entries``/``_recency`` are tracked properties (rebind
        detection). The shard keeps working identically.
    strict:
        When True, the first violation raises
        :class:`~repro.analysis.sanitizer.InvariantViolation` at the
        offending access; when False (default) violations accumulate
        in :attr:`reports`.
    """

    def __init__(self, shard: Any, strict: bool = False) -> None:
        self.shard = shard
        self.strict = strict
        self.reports: List[LocksetReport] = []
        #: sanitizer-internal mutex — ordered strictly *after* any
        #: shard lock (acquired only inside tracking callbacks, which
        #: never take a shard lock themselves), so instrumenting
        #: cannot introduce the deadlocks it exists to find
        self._mutex = threading.Lock()
        self._held: Dict[int, List[str]] = {}
        self._edges: Dict[str, Set[str]] = {}
        self._fields: Dict[str, _FieldState] = {}
        self._reported: Set[Tuple[str, str]] = set()
        self.accesses = 0

        self._invariants = invariants_for(SCOPE_THREAD)

        # Swap the class first so the wrapper assignments below flow
        # through the tracked properties (seeding their shadow slots).
        cls = shard.__class__
        shard.__class__ = type(
            "Lockset" + cls.__name__,
            (cls,),
            {
                "_entries": self._tracked_property("_entries"),
                "_recency": self._tracked_property("_recency"),
            },
        )
        shard.lock = _TrackingLock("CacheShard.lock", shard.lock, self)
        shard._entries = _InstrumentedDict(
            dict(shard.__dict__.pop("_entries")), self, "_entries"
        )
        shard._recency = _InstrumentedList(
            list(shard.__dict__.pop("_recency")), self, "_recency"
        )
        shard.cache = _ZCacheProxy(shard.cache, self)

    # -- instrumentation plumbing -------------------------------------------
    def _tracked_property(self, name: str) -> property:
        shadow = "_zrace_" + name
        san = self

        def fget(obj: Any) -> Any:
            return obj.__dict__[shadow]

        def fset(obj: Any, value: Any) -> None:
            if shadow in obj.__dict__:
                # A rebind after instrumentation is a write access on
                # every policy, and the fresh object must stay tracked.
                san._field_access(name, is_write=True, op="rebind")
                if isinstance(value, dict):
                    value = _InstrumentedDict(value, san, name)
                elif isinstance(value, list):
                    value = _InstrumentedList(value, san, name)
            obj.__dict__[shadow] = value

        return property(fget, fset)

    def track_lock(self, name: str, lock: Any = None) -> _TrackingLock:
        """A fresh tracked lock feeding this sanitizer's order graph."""
        return _TrackingLock(name, lock or threading.Lock(), self)

    # -- lock-order detector -------------------------------------------------
    def _before_acquire(self, name: str) -> None:
        tid = threading.get_ident()
        with self._mutex:
            held = self._held.get(tid, [])
            if name in held:
                self._violation(
                    ThreadCheck(cycle=(name, name)), field=name,
                    state="re-acquire",
                )
                raise InvariantViolation(
                    "lock-order",
                    f"thread re-acquires non-reentrant lock '{name}' "
                    "(forwarding would deadlock)",
                    invariant="lock-order-acyclic",
                )
            for prior in held:
                self._edges.setdefault(prior, set()).add(name)
                path = self._path(name, prior)
                if path is not None:
                    self._violation(
                        ThreadCheck(cycle=(prior, *path)),
                        field=name, state="cycle",
                    )

    def _after_acquire(self, name: str) -> None:
        tid = threading.get_ident()
        with self._mutex:
            self._held.setdefault(tid, []).append(name)

    def _on_release(self, name: str) -> None:
        tid = threading.get_ident()
        with self._mutex:
            held = self._held.get(tid)
            if held and name in held:
                held.remove(name)

    def _path(self, src: str, dst: str) -> Optional[Tuple[str, ...]]:
        """Edge path ``src → … → dst``, or None when unreachable."""
        parents: Dict[str, Optional[str]] = {src: None}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for succ in self._edges.get(node, ()):
                if succ in parents:
                    continue
                parents[succ] = node
                if succ == dst:
                    path = [succ]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])  # type: ignore[arg-type]
                    return tuple(reversed(path))
                frontier.append(succ)
        return None

    # -- lockset detector ----------------------------------------------------
    def _field_access(self, field: str, is_write: bool, op: str) -> None:
        tid = threading.get_ident()
        with self._mutex:
            self.accesses += 1
            held = frozenset(self._held.get(tid, ()))
            state = self._fields.setdefault(field, _FieldState())
            state.access(tid, held, is_write)
            self._violation(
                ThreadCheck(
                    field=field,
                    op=op,
                    state=state.state,
                    lockset=frozenset(state.lockset or ()),
                    threads=len(state.threads),
                ),
                field=field,
                state=state.state,
            )

    # -- evaluation (caller holds self._mutex) -------------------------------
    def _violation(self, ctx: ThreadCheck, field: str, state: str) -> None:
        for inv in self._invariants:
            detail = inv.check(ctx)
            if detail is None:
                continue
            if (inv.name, field) in self._reported:
                continue
            self._reported.add((inv.name, field))
            self.reports.append(
                LocksetReport(
                    invariant=inv.name,
                    kind=inv.kind,
                    detail=detail,
                    field=field,
                    thread=threading.current_thread().name,
                    state=state,
                )
            )
            if self.strict:
                raise InvariantViolation(
                    inv.kind, detail, invariant=inv.name
                )

    # -- reporting -----------------------------------------------------------
    def field_states(self) -> Dict[str, str]:
        """Current Eraser state per tracked field (tests/reporting)."""
        with self._mutex:
            return {name: st.state for name, st in self._fields.items()}

    def summary(self) -> str:
        """One-line rollup: accesses, reports, per-field end states."""
        with self._mutex:
            fields = ", ".join(
                f"{name}={st.state}"
                f"[{st.writes}w/{st.reads}r/{len(st.threads)}t]"
                for name, st in sorted(self._fields.items())
            )
        return (
            f"lockset sanitizer: {self.accesses} tracked accesses, "
            f"{len(self.reports)} report(s); {fields or 'no fields touched'}"
        )


# ---------------------------------------------------------------------------
# Replay drivers: threaded serve traffic through an instrumented shard.
# Shared by ``zcache-repro check --lockset`` and scripts/serve_smoke.py.
# The serve imports are local so the analysis package keeps zero
# import-time dependency on the serve layer.
# ---------------------------------------------------------------------------


def instrumented_replay(
    ops: int = 3000,
    threads: int = 4,
    seed: int = 0,
    fingerprint: bool = False,
) -> LocksetSanitizer:
    """Mixed get/put traffic from ``threads`` workers on a tracked shard.

    The production discipline must come back clean: every field ends
    either thread-exclusive or with a non-empty candidate lockset, and
    the acquisition graph stays acyclic.
    """
    import random

    from repro.serve.shard import CacheShard

    shard = CacheShard(
        num_ways=2, lines_per_way=64, levels=2, fingerprint=fingerprint
    )
    san = LocksetSanitizer(shard)

    def worker(wid: int) -> None:
        rng = random.Random(seed * 1000 + wid)
        for _ in range(ops):
            addr = rng.randrange(512)
            if rng.random() < 0.5:
                shard.put(addr, addr, b"%d" % addr)
            else:
                shard.get(addr)

    pool = [
        threading.Thread(target=worker, args=(wid,), name=f"replay-{wid}")
        for wid in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return san


def planted_unlocked_replay(
    ops: int = 1500, threads: int = 2, seed: int = 0
) -> LocksetSanitizer:
    """The acceptance negative: a shard whose ``put`` skips the lock.

    Two writer threads mutating the payload store and the zcache with
    no lock held drive both fields to ``shared-modified`` with an
    empty candidate lockset — the checker must report them. The
    workers swallow exceptions: with the lock gone, the *real* races
    the discipline prevents (policy desync, torn walks) can genuinely
    fire, and this replay only cares what the lockset detector saw.
    """
    import random

    from repro.serve.shard import CacheShard

    class UnlockedShard(CacheShard):
        def put(self, address: int, key: object, value: object) -> None:
            self.cache.access(address, is_write=True)
            self._sync_entries(address, key, value, None)

    shard = UnlockedShard(num_ways=2, lines_per_way=64, levels=2)
    san = LocksetSanitizer(shard)

    def worker(wid: int) -> None:
        rng = random.Random(seed * 1000 + wid)
        for _ in range(ops):
            try:
                shard.put(rng.randrange(512), wid, wid)
            except Exception:
                pass

    pool = [
        threading.Thread(target=worker, args=(wid,), name=f"planted-{wid}")
        for wid in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return san
