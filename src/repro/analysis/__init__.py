"""Correctness tooling: specs, lint rules, sanitizer, model checker.

One declarative invariant registry (:mod:`repro.analysis.spec`) backs
three independent enforcement prongs:

- :mod:`repro.analysis.lint` — ZSan, a custom AST lint engine with
  repository-specific rules (seeded-randomness discipline, float
  equality, the replacement-policy contract, hot-path dataclass slots,
  wall-clock/global-state hygiene). Run via ``zcache-repro lint``.
  :mod:`repro.analysis.semantic` adds the ZProve whole-program pass
  (ZS101–ZS109, including the effect/typestate rules) behind
  ``lint --deep``.
- :mod:`repro.analysis.sanitizer` — :class:`SanitizedArray`, a runtime
  proxy driving the registry invariants after every array operation
  along one concrete run. Run via ``zcache-repro check --sanitize``.
- :mod:`repro.analysis.modelcheck` — an exhaustive bounded model
  checker enumerating *every* access sequence over tiny geometries,
  checking the registry invariants plus reference↔turbo bit-identity
  each step. Run via ``zcache-repro check --model``.

See ``docs/specs.md`` and the "Analysis & sanitizer layer" section of
``docs/architecture.md``.
"""

from repro.analysis.lint import Finding, LintEngine, LintReport, LintRule
from repro.analysis.sanitizer import (
    VIOLATION_KINDS,
    InvariantViolation,
    SanitizedArray,
    make_wrapper,
    sanitize,
)
from repro.analysis.spec import (
    INVARIANT_REGISTRY,
    Invariant,
    default_invariants,
    invariants_for,
    register_invariant,
)

__all__ = [
    "Finding",
    "INVARIANT_REGISTRY",
    "Invariant",
    "LintEngine",
    "LintReport",
    "LintRule",
    "InvariantViolation",
    "SanitizedArray",
    "VIOLATION_KINDS",
    "default_invariants",
    "invariants_for",
    "register_invariant",
    "sanitize",
    "make_wrapper",
]
