"""Correctness tooling: static lint rules + runtime invariant sanitizer.

Two independent prongs guard the simulator's invariants:

- :mod:`repro.analysis.lint` — ZSan, a custom AST lint engine with
  repository-specific rules (seeded-randomness discipline, float
  equality, the replacement-policy contract, hot-path dataclass slots,
  wall-clock/global-state hygiene). Run via ``zcache-repro lint``.
- :mod:`repro.analysis.sanitizer` — :class:`SanitizedArray`, a runtime
  proxy that re-verifies walk-tree well-formedness, map↔array
  synchronisation, tag uniqueness, and block conservation after every
  array operation. Run via ``zcache-repro check --sanitize``.

See the "Analysis & sanitizer layer" section of
``docs/architecture.md``.
"""

from repro.analysis.lint import Finding, LintEngine, LintReport, LintRule
from repro.analysis.sanitizer import (
    VIOLATION_KINDS,
    InvariantViolation,
    SanitizedArray,
    make_wrapper,
    sanitize,
)

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "LintRule",
    "InvariantViolation",
    "SanitizedArray",
    "VIOLATION_KINDS",
    "sanitize",
    "make_wrapper",
]
