"""repro — a reproduction of "The ZCache: Decoupling Ways and Associativity".

Sanchez & Kozyrakis, MICRO-43, 2010.

Public API tour
---------------
Cache arrays and controller (:mod:`repro.core`)::

    from repro import ZCacheArray, Cache, LRU
    cache = Cache(ZCacheArray(num_ways=4, lines_per_way=1024, levels=3), LRU())
    result = cache.access(0xdeadbeef)

Associativity framework (:mod:`repro.assoc`)::

    from repro import TrackedPolicy, uniformity_cdf
    tracked = TrackedPolicy(LRU())
    cache = Cache(ZCacheArray(4, 1024, levels=2), tracked)
    ...  # run a trace
    dist = tracked.distribution()   # compare to uniformity_cdf(16)

Workloads (:mod:`repro.workloads`), CMP simulation (:mod:`repro.sim`),
energy/area models (:mod:`repro.energy`) and every paper figure/table
(:mod:`repro.experiments`) build on these.
"""

from repro.assoc import (
    AssociativityDistribution,
    TrackedPolicy,
    expected_priority,
    measure_associativity,
    uniformity_cdf,
)
from repro.core import (
    AccessResult,
    Cache,
    CacheArray,
    CacheStats,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
    replacement_candidates,
)
from repro.hashing import BitSelectHash, H3Hash, MixHash, make_hash_family
from repro.replacement import (
    FIFO,
    LFU,
    LRU,
    NRU,
    SRRIP,
    BucketedLRU,
    OptPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Cache",
    "CacheArray",
    "CacheStats",
    "AccessResult",
    "ZCacheArray",
    "SkewAssociativeArray",
    "SetAssociativeArray",
    "FullyAssociativeArray",
    "RandomCandidatesArray",
    "replacement_candidates",
    # hashing
    "H3Hash",
    "BitSelectHash",
    "MixHash",
    "make_hash_family",
    # replacement
    "ReplacementPolicy",
    "LRU",
    "FIFO",
    "BucketedLRU",
    "LFU",
    "RandomPolicy",
    "OptPolicy",
    "SRRIP",
    "NRU",
    "make_policy",
    # associativity framework
    "AssociativityDistribution",
    "TrackedPolicy",
    "uniformity_cdf",
    "expected_priority",
    "measure_associativity",
]
