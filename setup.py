"""Setup shim: enables `python setup.py develop` in offline environments
where pip's PEP-517 editable path is unavailable (no `wheel` package)."""
from setuptools import setup

setup()
