"""Tests for the replay harness and classifier (repro.faults.harness).

Includes the planted-detector-miss acceptance: ``stamp-corrupt``
targets replacement-policy state, which no registered ZSpec invariant
reaches, so it must *never* classify as ``detected`` — it is the
campaign's control proving the detector taxonomy has a known hole.
"""

import pytest

from repro.analysis.spec import INVARIANT_REGISTRY
from repro.faults.harness import (
    CLASSIFICATIONS,
    DESIGNS,
    SERVE_DESIGNS,
    FaultCase,
    FaultOutcome,
    classify,
    run_case,
    run_replay,
    run_serve_replay,
)
from repro.faults.plan import FaultPlan

SEED = 7
ACCESSES = 800
LPW = 16


def replay(design, plan=None, **kw):
    kw.setdefault("seed", SEED)
    kw.setdefault("accesses", ACCESSES)
    kw.setdefault("lines_per_way", LPW)
    return run_replay(design, plan=plan, **kw)


class TestGoldenPath:
    def test_golden_is_deterministic(self):
        a = replay("Z4/16")
        b = replay("Z4/16")
        assert (a.misses, a.hits, a.evictions) == (
            b.misses,
            b.hits,
            b.evictions,
        )
        assert a.detector is None and not a.crashed
        assert a.completed == ACCESSES

    @pytest.mark.parametrize("design", list(DESIGNS))
    def test_empty_plan_is_bit_identical_to_no_plan(self, design):
        # faults=None and an empty plan must be indistinguishable: the
        # injector stack with nothing armed is a pure proxy.
        golden = replay(design, plan=None)
        empty = replay(design, plan=FaultPlan())
        assert classify(empty, golden) == "benign"
        assert empty.evictions == golden.evictions
        assert (empty.misses, empty.hits) == (golden.misses, golden.hits)

    def test_serve_empty_plan_is_bit_identical(self):
        golden = run_serve_replay(
            "Z4/16", seed=SEED, accesses=ACCESSES, lines_per_way=LPW
        )
        empty = run_serve_replay(
            "Z4/16",
            seed=SEED,
            accesses=ACCESSES,
            lines_per_way=LPW,
            plan=FaultPlan(),
        )
        assert classify(empty, golden) == "benign"

    def test_serve_rejects_non_z_designs(self):
        with pytest.raises(ValueError, match="zcache design"):
            run_serve_replay("SA-4", seed=1, accesses=10)


class TestDetection:
    def test_stale_walk_detected_by_walk_records_current(self):
        golden = replay("Z4/16")
        faulted = replay(
            "Z4/16", plan=FaultPlan.single("stale-walk", 400, bit=1)
        )
        assert classify(faulted, golden) == "detected"
        assert faulted.detector == "walk-records-current"
        assert faulted.detector_kind == "walk-stale"

    def test_drop_relocation_detected_by_conservation(self):
        golden = replay("Z4/16")
        faulted = replay(
            "Z4/16", plan=FaultPlan.single("drop-relocation", 400)
        )
        assert classify(faulted, golden) == "detected"
        assert faulted.detector == "commit-conservation"

    def test_misdirect_relocation_detected_as_map_desync(self):
        golden = replay("Z4/52")
        faulted = replay(
            "Z4/52", plan=FaultPlan.single("misdirect-relocation", 400, bit=1)
        )
        assert classify(faulted, golden) == "detected"
        assert faulted.detector_kind == "map-desync"

    def test_tag_flip_detected_by_deep_scan(self):
        # With the deep scan running every access the duplicate-tag /
        # map-desync state checks win the race against a policy crash.
        golden = replay("Z4/16", deep_interval=1)
        faulted = replay(
            "Z4/16",
            plan=FaultPlan.single("tag-flip", 400, bit=1),
            deep_interval=1,
        )
        assert classify(faulted, golden) == "detected"
        assert faulted.detector_kind in ("duplicate-tag", "map-desync")

    def test_relocation_faults_benign_on_set_associative(self):
        # SA-4 has no relocation machinery: the armed event physically
        # cannot fire, which is the design-dependence story the
        # campaign table tells.
        golden = replay("SA-4")
        for kind in ("drop-relocation", "misdirect-relocation"):
            faulted = replay("SA-4", plan=FaultPlan.single(kind, 400))
            assert classify(faulted, golden) == "benign"


class TestPlantedDetectorMiss:
    """stamp-corrupt is outside every registered invariant's reach."""

    def test_no_registered_invariant_covers_policy_state(self):
        # The registry's vocabulary is array state; nothing in it
        # mentions policy stamps — the hole is structural, not luck.
        for invariant in INVARIANT_REGISTRY.values():
            assert "stamp" not in invariant.name
            assert "policy" not in invariant.kind

    @pytest.mark.parametrize("design", list(DESIGNS))
    @pytest.mark.parametrize("at", [100, 400, 700])
    def test_stamp_corrupt_never_detected(self, design, at):
        golden = replay(design)
        faulted = replay(design, plan=FaultPlan.single("stamp-corrupt", at))
        verdict = classify(faulted, golden)
        assert verdict != "detected"
        assert verdict != "crash"
        assert faulted.detector is None

    def test_stamp_corrupt_surfaces_as_silent_wrong_victim(self):
        # The miss must not be *invisible*: on designs under pressure
        # the zeroed stamp elects a different victim, and only the
        # golden diff sees it.
        golden = replay("Z4/16")
        faulted = replay(
            "Z4/16", plan=FaultPlan.single("stamp-corrupt", 400)
        )
        assert classify(faulted, golden) == "silent-wrong-victim"
        assert faulted.evictions != golden.evictions


class TestServeLayer:
    def test_drop_eviction_log_detected_by_shard_consistency(self):
        golden = run_serve_replay(
            "Z4/16", seed=11, accesses=2000, lines_per_way=64
        )
        faulted = run_serve_replay(
            "Z4/16",
            seed=11,
            accesses=2000,
            lines_per_way=64,
            plan=FaultPlan.single("drop-eviction-log", 1000),
        )
        assert classify(faulted, golden) == "detected"
        assert faulted.detector == "shard-consistency"
        assert faulted.detector_kind == "payload-desync"


class TestRunCase:
    def test_run_case_produces_checkpointable_outcome(self):
        case = FaultCase(
            design="Z4/16",
            kind="stale-walk",
            at=400,
            seed=SEED,
            accesses=ACCESSES,
            lines_per_way=LPW,
            bit=1,
        )
        outcome = run_case(case)
        assert outcome.classification in CLASSIFICATIONS
        assert outcome.classification == "detected"
        assert outcome.detected_at > 0
        assert FaultOutcome.from_dict(outcome.to_dict()) == outcome

    def test_case_dict_roundtrip(self):
        case = FaultCase(
            design="Z4/52", kind="tag-flip", at=3, seed=9, serve=False
        )
        assert FaultCase.from_dict(case.to_dict()) == case

    def test_serve_designs_subset_of_designs(self):
        assert set(SERVE_DESIGNS) <= set(DESIGNS)
