"""Tests for minimal-fault search (repro.faults.faultmin)."""

import pytest

from repro.faults.faultmin import (
    MinimalCounterexample,
    Minimizer,
    minimize_case,
    replay_counterexample,
)
from repro.faults.harness import FaultCase
from repro.faults.plan import FaultEvent, FaultPlan

#: a detected counterexample (stale-walk trips walk-records-current)
DETECTED = FaultCase(
    design="Z4/16", kind="stale-walk", at=400, seed=7,
    accesses=800, lines_per_way=16, bit=1,
)
#: a silent counterexample (the planted detector miss)
SILENT = FaultCase(
    design="Z4/16", kind="stamp-corrupt", at=400, seed=7,
    accesses=800, lines_per_way=16,
)


class TestMinimize:
    @pytest.mark.parametrize(
        "case,expected",
        [
            pytest.param(DETECTED, "detected", id="stale-walk-detected"),
            pytest.param(SILENT, "silent-wrong-victim", id="stamp-silent"),
        ],
    )
    def test_minimizes_two_fault_kinds_preserving_verdict(
        self, case, expected
    ):
        ce = minimize_case(case)
        assert ce.classification == expected
        assert ce.minimized_events == 1
        assert len(ce.plan) == 1
        # faultmin shrinks, never grows
        (event,) = ce.plan
        assert event.at <= case.at
        assert ce.probes >= 1

    def test_ddmin_strips_irrelevant_events(self):
        # A two-event plan where only the stale-walk matters: ddmin
        # must drop the decoy and keep the verdict.
        plan = FaultPlan(events=(
            FaultEvent(kind="stale-walk", at=400, bit=1),
            FaultEvent(kind="stamp-corrupt", at=100),
        ))
        ce = minimize_case(DETECTED, plan=plan)
        assert ce.classification == "detected"
        assert ce.original_events == 2
        assert ce.minimized_events == 1
        assert ce.plan.kinds() == ("stale-walk",)

    def test_benign_baseline_returns_unminimized(self):
        benign = FaultCase(
            design="SA-4", kind="drop-relocation", at=200, seed=7,
            accesses=400, lines_per_way=16,
        )
        ce = minimize_case(benign)
        assert ce.classification == "benign"
        assert ce.steps == []
        assert ce.minimized_events == ce.original_events

    def test_budget_is_enforced(self):
        mini = Minimizer(SILENT, budget=0)
        with pytest.raises(RuntimeError, match="budget"):
            mini.verdict(SILENT.plan())

    def test_probe_cache_spends_no_budget_on_repeats(self):
        mini = Minimizer(SILENT, budget=5)
        plan = SILENT.plan()
        first = mini.probe(plan)
        spent = mini.probes
        assert mini.probe(plan) == first
        assert mini.probes == spent


class TestCounterexamples:
    def test_counterexample_roundtrip_and_replay(self):
        ce = minimize_case(DETECTED)
        data = ce.to_dict()
        restored = MinimalCounterexample.from_dict(data)
        assert restored.plan == ce.plan
        assert restored.case == ce.case
        report = replay_counterexample(data)
        assert report["match"] is True
        assert report["observed"] == ce.classification
        assert report["detector"] == ce.detector

    def test_replay_flags_a_tampered_counterexample(self):
        ce = minimize_case(DETECTED)
        data = ce.to_dict()
        data["classification"] = "benign"
        report = replay_counterexample(data)
        assert report["match"] is False
