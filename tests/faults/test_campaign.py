"""Tests for the campaign driver (repro.faults.campaign)."""

import json

from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    build_cases,
    run_campaign,
)
from repro.faults.harness import CLASSIFICATIONS, FaultOutcome
from repro.obs import ObsContext

#: small but real: every kind, every design, one trigger, one variant
CONFIG = CampaignConfig(
    base_seed=1, accesses=400, lines_per_way=16, triggers=(0.5,), variants=1
)


def outcome_fingerprint(outcome):
    """Everything observable, in deterministic order."""
    return [
        (key, o.to_dict()) for key, o in sorted(outcome.outcomes.items())
    ]


class TestRoster:
    def test_roster_is_deterministic_and_complete(self):
        cases = build_cases(CONFIG)
        assert [c.key for c in cases] == [c.key for c in build_cases(CONFIG)]
        # 4 designs x 5 array/policy kinds + 2 serve designs x 1 kind
        assert len(cases) == 4 * 5 + 2
        assert len({c.key for c in cases}) == len(cases)
        serve = [c for c in cases if c.serve]
        assert {c.design for c in serve} == {"Z4/16", "Z4/52"}
        assert all(c.kind == "drop-eviction-log" for c in serve)

    def test_seeds_derive_from_case_identity(self):
        a = build_cases(CONFIG)
        b = build_cases(CampaignConfig(
            base_seed=2, accesses=400, lines_per_way=16,
            triggers=(0.5,), variants=1,
        ))
        assert all(x.seed != y.seed for x, y in zip(a, b))


class TestDeterministicMerge:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_campaign(CONFIG, jobs=1)
        parallel = run_campaign(CONFIG, jobs=2)
        assert not serial.errors and not parallel.errors
        assert not parallel.degraded
        assert outcome_fingerprint(serial) == outcome_fingerprint(parallel)
        assert serial.report.to_dict() == parallel.report.to_dict()

    def test_classification_counters_reach_parent_registry(self):
        obs = ObsContext()
        outcome = run_campaign(CONFIG, jobs=1, obs=obs)
        snapshot = obs.metrics.snapshot()
        fault_keys = [k for k in snapshot if k.startswith("faults.")]
        assert len(fault_keys) >= 1
        total = sum(snapshot[k] for k in fault_keys)
        assert total == len(outcome.outcomes)


class TestCheckpoint:
    def test_resume_restores_everything(self, tmp_path):
        path = tmp_path / "faults.ck.json"
        first = run_campaign(CONFIG, jobs=2, checkpoint=str(path))
        assert path.exists()
        second = run_campaign(CONFIG, jobs=2, checkpoint=str(path))
        assert second.restored == len(first.outcomes)
        assert outcome_fingerprint(first) == outcome_fingerprint(second)

    def test_partial_checkpoint_resume_is_bit_identical(self, tmp_path):
        # A campaign killed mid-run leaves a half-written checkpoint;
        # the resume restores that half, recomputes the rest, and the
        # union is indistinguishable from an undisturbed run.
        path = tmp_path / "faults.ck.json"
        full = run_campaign(CONFIG, jobs=1, checkpoint=str(path))
        data = json.loads(path.read_text(encoding="utf-8"))
        keys = sorted(data["results"])
        kept = keys[: len(keys) // 2]
        data["results"] = {k: data["results"][k] for k in kept}
        path.write_text(json.dumps(data), encoding="utf-8")

        resumed = run_campaign(CONFIG, jobs=2, checkpoint=str(path))
        assert resumed.restored == len(kept)
        assert outcome_fingerprint(full) == outcome_fingerprint(resumed)

    def test_config_change_invalidates_checkpoint(self, tmp_path):
        path = tmp_path / "faults.ck.json"
        run_campaign(CONFIG, jobs=1, checkpoint=str(path))
        other = CampaignConfig(
            base_seed=2, accesses=400, lines_per_way=16,
            triggers=(0.5,), variants=1,
        )
        resumed = run_campaign(other, jobs=1, checkpoint=str(path))
        assert resumed.restored == 0


class TestReport:
    def test_table_rows_are_consistent(self):
        outcome = run_campaign(CONFIG, jobs=1)
        rows = outcome.report.rows()
        assert rows == sorted(
            rows, key=lambda r: (r["design"], r["kind"])
        )
        for row in rows:
            assert row["cases"] == sum(row[c] for c in CLASSIFICATIONS)
            assert 0.0 <= row["detection_rate"] <= 1.0
        total = sum(row["cases"] for row in rows)
        assert total == len(outcome.outcomes)

    def test_campaign_finds_detections_and_the_planted_miss(self):
        outcome = run_campaign(CONFIG, jobs=1)
        report = outcome.report
        # The relocation detectors work where relocation exists...
        assert report.detection_rate("Z4/16", "drop-relocation") == 1.0
        assert report.detection_rate("Z4/52", "misdirect-relocation") == 1.0
        # ...and cannot fire where it does not.
        cell = report.cells[("SA-4", "drop-relocation")]
        assert cell["benign"] == cell_total(cell)
        # The planted miss: stamp corruption is never detected anywhere.
        for (design, kind), cell in report.cells.items():
            if kind == "stamp-corrupt":
                assert cell["detected"] == 0

    def test_render_and_payload(self):
        outcome = run_campaign(CONFIG, jobs=1)
        text = outcome.report.render()
        assert "design" in text and "det-rate" in text
        payload = outcome.to_dict()
        assert set(payload) >= {"cases", "report", "restored", "degraded"}
        # payload round-trips through JSON (the BENCH file contract)
        json.loads(json.dumps(payload))

    def test_report_add_folds_taxonomy(self):
        report = CampaignReport()
        report.add(FaultOutcome(
            key="k1", design="Z4/16", kind="stale-walk",
            classification="detected", detector="walk-records-current",
            detector_kind="walk-stale",
        ))
        report.add(FaultOutcome(
            key="k2", design="Z4/16", kind="stamp-corrupt",
            classification="silent-wrong-victim", mpki_delta=-3.0,
        ))
        assert report.taxonomy == {"walk-stale": 1}
        assert report.detectors == {"walk-records-current": 1}
        assert report.mean_drift("Z4/16", "stamp-corrupt") == 3.0


def cell_total(cell):
    return sum(cell.values())
