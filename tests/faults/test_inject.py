"""Tests for the fault injectors (repro.faults.inject)."""

from repro.core import Cache
from repro.core.zcache import ZCacheArray
from repro.faults.inject import FaultInjector, FaultyArray
from repro.faults.plan import FaultEvent, FaultPlan
from repro.replacement.lru import LRU


def _filled_array(blocks=32):
    array = ZCacheArray(4, 16, levels=2, hash_seed=3)
    cache = Cache(array, LRU())
    for address in range(blocks):
        cache.access(address)
    return array, cache


class TestSchedule:
    def test_events_fire_at_their_trigger(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="tag-flip", at=0),
                FaultEvent(kind="tag-flip", at=2),
            )
        )
        array, _ = _filled_array()
        injector = FaultInjector(plan)
        injector.advance(array)
        assert len(injector.fired) == 1
        injector.advance(array)
        assert len(injector.fired) == 1
        injector.advance(array)
        assert len(injector.fired) == 2
        assert injector.exhausted

    def test_tag_flip_mutates_one_resident_tag(self):
        array, _ = _filled_array()
        before = [list(row) for row in array._lines]
        injector = FaultInjector(FaultPlan.single("tag-flip", 0, bit=2))
        injector.advance(array)
        after = array._lines
        diffs = [
            (w, i)
            for w in range(array.num_ways)
            for i in range(array.lines_per_way)
            if before[w][i] != after[w][i]
        ]
        assert len(diffs) == 1
        w, i = diffs[0]
        assert after[w][i] == before[w][i] ^ (1 << 2)
        # The position map is deliberately left stale: that is the fault.
        assert before[w][i] in array._pos

    def test_tag_flip_fizzles_on_empty_array(self):
        array = ZCacheArray(4, 16, levels=2, hash_seed=3)
        injector = FaultInjector(FaultPlan.single("tag-flip", 0))
        injector.advance(array)
        ((_, _, applied),) = injector.fired
        assert applied is False

    def test_stamp_corrupt_zeroes_one_stamp(self):
        _, cache = _filled_array()
        policy = cache.policy
        assert all(v > 0 for v in policy._stamp.values())
        injector = FaultInjector(FaultPlan.single("stamp-corrupt", 0))
        injector.advance(None, policy)
        assert sum(1 for v in policy._stamp.values() if v == 0) == 1

    def test_walk_and_commit_kinds_arm_instead_of_firing(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="stale-walk", at=0),
                FaultEvent(kind="drop-relocation", at=0),
                FaultEvent(kind="drop-eviction-log", at=0),
            )
        )
        injector = FaultInjector(plan)
        injector.advance()
        assert not injector.fired
        assert not injector.exhausted
        assert injector.take_log_drop() is True
        assert injector.take_log_drop() is False


class TestFaultyArray:
    def test_pure_proxy_with_empty_plan(self):
        # Same seed, same stream; one cache wrapped, one bare — the
        # proxy with nothing armed must be invisible in every counter
        # and in the final array contents.
        bare_array = ZCacheArray(4, 16, levels=2, hash_seed=9)
        bare = Cache(bare_array, LRU())
        wrapped_array = ZCacheArray(4, 16, levels=2, hash_seed=9)
        injector = FaultInjector(FaultPlan())
        proxied = Cache(FaultyArray(wrapped_array, injector), LRU())
        import random

        rng_a, rng_b = random.Random(11), random.Random(11)
        for _ in range(500):
            bare.access(rng_a.randrange(256))
            proxied.access(rng_b.randrange(256))
        assert bare_array._lines == wrapped_array._lines
        assert bare_array._pos == wrapped_array._pos
        assert (
            bare.stats.counters()["misses"].value
            == proxied.stats.counters()["misses"].value
        )

    def test_delegation_surface(self):
        array, _ = _filled_array()
        injector = FaultInjector(FaultPlan())
        proxy = FaultyArray(array, injector)
        assert proxy.array is array
        assert proxy.num_ways == array.num_ways
        assert len(proxy) == len(array)
        resident = next(iter(array._pos))
        assert resident in proxy
        assert proxy.lookup(resident) == array.lookup(resident)

    def test_armed_walk_corrupts_returned_candidates(self):
        array, _ = _filled_array(blocks=200)
        injector = FaultInjector(FaultPlan.single("stale-walk", 0, bit=1))
        proxy = FaultyArray(array, injector)
        injector.advance(array)
        repl = proxy.build_replacement(10_000)
        # Exactly one candidate record disagrees with the array.
        stale = [
            c
            for c in repl.candidates
            if c.address != array._read(c.position)
        ]
        assert len(stale) == 1
        assert injector.exhausted
