"""Tests for fault plans (repro.faults.plan)."""

import pytest

from repro.faults.plan import (
    ARRAY_FAULT_KINDS,
    FAULT_KINDS,
    POLICY_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
)


class TestFaultEvent:
    def test_kind_vocabulary_is_partitioned(self):
        assert set(FAULT_KINDS) == (
            set(ARRAY_FAULT_KINDS)
            | set(POLICY_FAULT_KINDS)
            | set(SERVE_FAULT_KINDS)
        )
        assert len(FAULT_KINDS) == len(set(FAULT_KINDS))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="cosmic-ray", at=0)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="tag-flip", at=-1)
        with pytest.raises(ValueError):
            FaultEvent(kind="tag-flip", at=0, bit=-2)

    def test_dict_roundtrip_elides_zero_hints(self):
        event = FaultEvent(kind="tag-flip", at=7, bit=3)
        data = event.to_dict()
        assert data == {"kind": "tag-flip", "at": 7, "bit": 3}
        assert FaultEvent.from_dict(data) == event

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_constructs(self, kind):
        assert FaultEvent(kind=kind, at=0).kind == kind


class TestFaultPlan:
    def test_events_are_canonically_ordered(self):
        a = FaultEvent(kind="tag-flip", at=5)
        b = FaultEvent(kind="stale-walk", at=2)
        assert FaultPlan(events=(a, b)) == FaultPlan(events=(b, a))
        assert FaultPlan(events=(a, b)).events[0] is b

    def test_len_iter_bool(self):
        plan = FaultPlan.single("tag-flip", 3)
        assert len(plan) == 1 and bool(plan)
        assert list(plan) == [FaultEvent(kind="tag-flip", at=3)]
        assert not FaultPlan()

    def test_kinds_in_schedule_order(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="stamp-corrupt", at=9),
                FaultEvent(kind="tag-flip", at=1),
                FaultEvent(kind="tag-flip", at=4),
            )
        )
        assert plan.kinds() == ("tag-flip", "stamp-corrupt")

    def test_subset_and_list_roundtrip(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="tag-flip", at=1, bit=2),
                FaultEvent(kind="stale-walk", at=8, index=1),
            )
        )
        assert FaultPlan.from_list(plan.to_list()) == plan
        sub = plan.subset([plan.events[1]])
        assert len(sub) == 1 and sub.events[0].kind == "stale-walk"

    def test_single_passes_hints(self):
        plan = FaultPlan.single("misdirect-relocation", 12, index=2, bit=5)
        (event,) = plan
        assert (event.at, event.index, event.bit) == (12, 2, 5)
