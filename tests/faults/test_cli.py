"""Tests for the ``zcache-repro faults`` CLI (repro.faults.cli)."""

import json

import pytest

from repro.cli import main as repro_main
from repro.faults.cli import run_faults_cli

#: tiny-but-real campaign arguments shared by the CLI tests
SMALL = [
    "--accesses", "400",
    "--lines-per-way", "16",
    "--triggers", "0.5",
    "--variants", "1",
]


def test_requires_a_mode():
    with pytest.raises(SystemExit):
        run_faults_cli([])


def test_campaign_prints_table_and_writes_json(capsys, tmp_path):
    out_path = tmp_path / "faults.json"
    rc = run_faults_cli(
        ["--campaign", "--jobs", "1", "--json", str(out_path)] + SMALL
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "det-rate" in out
    assert "violation taxonomy:" in out
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    assert "campaign" in payload
    assert payload["campaign"]["report"]["table"]


def test_campaign_checkpoint_resume(capsys, tmp_path):
    ck = tmp_path / "ck.json"
    args = ["--campaign", "--jobs", "1", "--checkpoint", str(ck)] + SMALL
    assert run_faults_cli(args) == 0
    capsys.readouterr()
    assert run_faults_cli(args) == 0
    assert "restored" in capsys.readouterr().out


def test_minimize_and_replay_roundtrip(capsys, tmp_path):
    out_path = tmp_path / "faults.json"
    rc = run_faults_cli(
        ["--campaign", "--minimize", "--jobs", "1",
         "--budget", "120", "--json", str(out_path)] + SMALL
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "faultmin:" in out
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    counterexamples = payload["counterexamples"]
    # minimal counterexamples for at least two distinct fault kinds
    assert len({ce["case"]["kind"] for ce in counterexamples}) >= 2

    rc = run_faults_cli(["--replay", str(out_path)])
    replay_out = capsys.readouterr().out
    assert rc == 0
    assert "MISMATCH" not in replay_out


def test_top_level_dispatch(capsys, tmp_path):
    rc = repro_main(["faults", "--campaign", "--jobs", "1"] + SMALL)
    assert rc == 0
    assert "faults:" in capsys.readouterr().out
