"""Validation of the paper's analytical framework (Section IV-B).

The random-candidates cache *provably* achieves F_A(x) = x^n; these tests
reproduce the paper's experimental validation and the framework's key
comparative claims:

1. random-candidates matches x^n for several n, workloads, policies;
2. skew-associative caches closely match uniformity;
3. a fully-associative cache is the e = 1.0 ideal;
4. un-hashed set-associative caches deviate under conflict-heavy traffic.
"""

import random

import pytest

from repro.assoc import TrackedPolicy, expected_priority
from repro.core import (
    Cache,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
)
from repro.replacement import LFU, LRU, FIFO


def run(cache, trace):
    for addr in trace:
        cache.access(addr)
    return cache


def uniform_trace(n, footprint, seed):
    rng = random.Random(seed)
    return [rng.randrange(footprint) for _ in range(n)]


class TestRandomCandidatesMatchesUniformity:
    @pytest.mark.parametrize("n_cand", [4, 8, 16])
    def test_matches_xn_for_each_n(self, n_cand):
        t = TrackedPolicy(LRU())
        cache = Cache(RandomCandidatesArray(512, n_cand, seed=n_cand), t)
        run(cache, uniform_trace(20_000, 4096, seed=1))
        d = t.distribution()
        assert d.mean() == pytest.approx(expected_priority(n_cand), abs=0.02)
        assert d.ks_to_uniformity(n_cand) < 0.08

    @pytest.mark.parametrize("policy_factory", [LRU, FIFO, LFU])
    def test_policy_independent(self, policy_factory):
        # The framework decouples array from policy: the distribution
        # matches x^n under any policy with a global order.
        t = TrackedPolicy(policy_factory())
        cache = Cache(RandomCandidatesArray(256, 8, seed=3), t)
        run(cache, uniform_trace(15_000, 2048, seed=2))
        assert t.distribution().ks_to_uniformity(8) < 0.08

    def test_workload_independent(self):
        # Strided and uniform traces both match x^n.
        t = TrackedPolicy(LRU())
        cache = Cache(RandomCandidatesArray(256, 8, seed=4), t)
        strided = [(17 * i) % 4096 for i in range(15_000)]
        run(cache, strided)
        assert t.distribution().ks_to_uniformity(8) < 0.1


class TestSkewMatchesUniformity:
    @pytest.mark.parametrize("ways,lines", [(4, 128), (8, 64)])
    def test_skew_near_xw(self, ways, lines):
        t = TrackedPolicy(LRU())
        cache = Cache(SkewAssociativeArray(ways, lines, hash_seed=5), t)
        run(cache, uniform_trace(30_000, 8 * ways * lines, seed=6))
        d = t.distribution()
        assert d.ks_to_uniformity(ways) < 0.06
        assert d.effective_candidates() == pytest.approx(ways, rel=0.15)


class TestComparativeClaims:
    def test_unhashed_set_associative_deviates_on_strides(self):
        # Hot-set conflict traffic on top of a resident background: the
        # conflict victims are recently-used blocks while old blocks sit
        # safe in other sets, so eviction priorities collapse far below
        # the uniformity curve (paper Fig. 3a pathology).
        t = TrackedPolicy(LRU())
        cache = Cache(SetAssociativeArray(4, 64, hash_kind="bitsel"), t)
        rng = random.Random(11)
        trace = []
        for i in range(25_000):
            if i % 2:
                trace.append(((i // 2) % 64) * 64)  # set-0 conflict churn
            else:
                trace.append(rng.randrange(300))  # background fills sets
        run(cache, trace)
        d = t.distribution()
        assert d.mean() < expected_priority(4) - 0.05

    def test_skew_beats_set_associative_same_ways(self):
        trace = []
        rng = random.Random(7)
        # Mixed stride + random traffic: hard on the un-hashed index.
        for i in range(25_000):
            trace.append((i * 64) % 8192 if i % 2 else rng.randrange(8192))
        t_sa = TrackedPolicy(LRU())
        run(Cache(SetAssociativeArray(4, 64, hash_kind="bitsel"), t_sa), trace)
        t_sk = TrackedPolicy(LRU())
        run(Cache(SkewAssociativeArray(4, 64, hash_seed=8), t_sk), trace)
        assert t_sk.distribution().mean() > t_sa.distribution().mean()
