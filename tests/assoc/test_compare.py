"""Tests for the cross-design comparison helpers."""

import random

import pytest

from repro.assoc import AssociativityDistribution, compare_designs, dominates
from repro.core import SetAssociativeArray, SkewAssociativeArray, ZCacheArray
from repro.replacement import LRU


def trace(n=25_000, footprint=2_048, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(footprint), False) for _ in range(n)]


DESIGNS = [
    ("SA-4", 4, lambda: SetAssociativeArray(4, 64, hash_kind="h3")),
    ("skew-4", 4, lambda: SkewAssociativeArray(4, 64, hash_seed=1)),
    ("Z4/16", 16, lambda: ZCacheArray(4, 64, levels=2, hash_seed=2)),
]


class TestDominates:
    def test_higher_n_dominates_lower(self):
        import numpy as np

        rng = np.random.default_rng(0)
        low = AssociativityDistribution(np.max(rng.random((5_000, 4)), axis=1))
        high = AssociativityDistribution(np.max(rng.random((5_000, 16)), axis=1))
        assert dominates(high, low)
        assert not dominates(low, high)

    def test_self_dominance_with_tolerance(self):
        d = AssociativityDistribution([0.5, 0.7, 0.9])
        assert dominates(d, d)


class TestCompareDesigns:
    def test_report_structure(self):
        report = compare_designs(DESIGNS, LRU, trace())
        assert len(report.measurements) == 3
        names = [m.name for m in report.ranked()]
        assert set(names) == {"SA-4", "skew-4", "Z4/16"}
        assert len(report.rows()) == 4

    def test_zcache_ranks_first(self):
        report = compare_designs(DESIGNS, LRU, trace())
        assert report.ranked()[0].name == "Z4/16"

    def test_zcache_dominates_setassoc(self):
        report = compare_designs(DESIGNS, LRU, trace())
        matrix = report.dominance_matrix()
        assert matrix[("Z4/16", "SA-4")]

    def test_warmup_discards(self):
        full = compare_designs(DESIGNS[:1], LRU, trace())
        warm = compare_designs(DESIGNS[:1], LRU, trace(), warmup=15_000)
        assert len(warm.measurements[0].distribution) < len(
            full.measurements[0].distribution
        )

    def test_no_evictions_raises(self):
        tiny = [(1, False), (2, False)]
        with pytest.raises(ValueError):
            compare_designs(DESIGNS[:1], LRU, tiny)
