"""Tests for the associativity distribution machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assoc import AssociativityDistribution, expected_priority, uniformity_cdf


class TestUniformityCdf:
    def test_analytic_values(self):
        cdf = uniformity_cdf(16)
        assert cdf(0.5) == pytest.approx(0.5**16)
        assert cdf(0.0) == 0.0
        assert cdf(1.0) == 1.0
        assert cdf(-1.0) == 0.0
        assert cdf(2.0) == 1.0

    def test_paper_headline_number(self):
        # "for 16 replacement candidates, the probability of evicting a
        # block with e < 0.4 is 10^-6" (Section IV-B; 0.4^16 = 4.3e-7,
        # which the paper rounds to the nearest order of magnitude).
        assert uniformity_cdf(16)(0.4) == pytest.approx(0.4**16)
        assert 1e-7 < uniformity_cdf(16)(0.4) < 1e-6

    def test_more_candidates_more_skew(self):
        x = 0.9
        values = [uniformity_cdf(n)(x) for n in (4, 8, 16, 64)]
        assert values == sorted(values, reverse=True)

    def test_rejects_zero_candidates(self):
        with pytest.raises(ValueError):
            uniformity_cdf(0)


class TestExpectedPriority:
    def test_formula(self):
        assert expected_priority(1) == pytest.approx(0.5)
        assert expected_priority(52) == pytest.approx(52 / 53)

    def test_monotone_in_candidates(self):
        vals = [expected_priority(n) for n in range(1, 65)]
        assert vals == sorted(vals)


class TestDistribution:
    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            AssociativityDistribution([])
        with pytest.raises(ValueError):
            AssociativityDistribution([0.5, 1.5])

    def test_cdf_and_quantiles(self):
        d = AssociativityDistribution([0.2, 0.4, 0.6, 0.8])
        assert d.cdf([0.5])[0] == pytest.approx(0.5)
        assert d.quantile(0.0) == pytest.approx(0.2)
        assert d.quantile(1.0) == pytest.approx(0.8)

    def test_fraction_below(self):
        d = AssociativityDistribution([0.1, 0.5, 0.9])
        assert d.fraction_below(0.5) == pytest.approx(1 / 3)

    def test_effective_candidates_inverts_mean(self):
        # A sample with mean n/(n+1) recovers n.
        rng = np.random.default_rng(0)
        n = 8
        samples = np.max(rng.random((50_000, n)), axis=1)
        d = AssociativityDistribution(samples)
        assert d.effective_candidates() == pytest.approx(n, rel=0.05)

    def test_effective_candidates_saturates(self):
        d = AssociativityDistribution([1.0, 1.0])
        assert math.isinf(d.effective_candidates())

    def test_ks_identifies_correct_n(self):
        rng = np.random.default_rng(1)
        samples = np.max(rng.random((20_000, 16)), axis=1)
        d = AssociativityDistribution(samples)
        assert d.ks_to_uniformity(16) < 0.02
        assert d.ks_to_uniformity(4) > 0.2

    def test_summary_keys(self):
        d = AssociativityDistribution([0.5] * 10)
        s = d.summary()
        assert set(s) == {
            "samples",
            "mean",
            "p10",
            "p50",
            "frac_below_0.4",
            "effective_candidates",
        }

    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=100
        )
    )
    @settings(max_examples=50)
    def test_cdf_monotone_property(self, samples):
        d = AssociativityDistribution(samples)
        xs = np.linspace(0, 1, 21)
        cdf = d.cdf(xs)
        assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)
