"""Tests for the three-C miss decomposition."""

import random

import pytest

from repro.assoc import classify_misses
from repro.core import SetAssociativeArray, SkewAssociativeArray, ZCacheArray
from repro.replacement import LRU


def uniform_trace(n, footprint, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(footprint), False) for _ in range(n)]


class TestDecomposition:
    def test_components_sum_to_total(self):
        d = classify_misses(
            lambda: SetAssociativeArray(2, 16),
            LRU,
            uniform_trace(3_000, 200),
        )
        assert d.compulsory + d.capacity + d.conflict == d.total_misses

    def test_cold_trace_all_compulsory(self):
        # Every address referenced once: all misses are compulsory.
        trace = [(a, False) for a in range(500)]
        d = classify_misses(lambda: SetAssociativeArray(2, 16), LRU, trace)
        assert d.total_misses >= d.compulsory == 500
        assert d.capacity == 0

    def test_fits_in_cache_no_capacity_misses(self):
        trace = [(a % 24, False) for a in range(2_000)]
        d = classify_misses(lambda: SetAssociativeArray(2, 16), LRU, trace)
        assert d.capacity == 0
        assert d.compulsory == 24

    def test_conflict_misses_from_bad_indexing(self):
        # Stride equal to the set count: everything lands in one set.
        trace = [((i % 8) * 16, False) for i in range(4_000)]
        d = classify_misses(lambda: SetAssociativeArray(2, 16), LRU, trace)
        assert d.conflict > 0
        assert d.conflict_fraction > 0.5

    def test_zcache_reduces_conflict_misses(self):
        # Hot-set stride conflicts on an un-hashed SA index: classic
        # conflict misses, which the zcache's hashed multi-way placement
        # eliminates almost entirely.
        rng = random.Random(1)
        trace = []
        for i in range(20_000):
            if i % 2:
                trace.append(((i // 2 % 12) * 32, False))  # one hot set
            else:
                trace.append((rng.randrange(100), False))
        sa = classify_misses(
            lambda: SetAssociativeArray(4, 32, hash_kind="bitsel"), LRU, trace
        )
        z = classify_misses(
            lambda: ZCacheArray(4, 32, levels=3, hash_seed=2), LRU, trace
        )
        assert sa.conflict > 100
        assert z.conflict < sa.conflict * 0.25

    def test_negative_conflict_possible(self):
        # Anti-LRU cyclic scan: fully-associative LRU misses always; a
        # restricted cache "accidentally" keeps some blocks — negative
        # conflict count, one of the paper's objections to this metric.
        trace = [(i % 40, False) for i in range(4_000)]
        d = classify_misses(
            lambda: SkewAssociativeArray(2, 16, hash_seed=3), LRU, trace
        )
        assert d.conflict < 0

    def test_row_renders(self):
        d = classify_misses(
            lambda: SetAssociativeArray(2, 16), LRU, uniform_trace(500, 100)
        )
        assert "compulsory" in d.row()
        assert 0.0 <= d.miss_rate <= 1.0

    def test_empty_trace(self):
        d = classify_misses(lambda: SetAssociativeArray(2, 16), LRU, [])
        assert d.accesses == 0
        assert d.miss_rate == 0.0
        assert d.conflict_fraction == 0.0
