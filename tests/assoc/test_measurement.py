"""Tests for the TrackedPolicy instrumentation."""

import random

import pytest

from repro.assoc import TrackedPolicy, measure_associativity
from repro.core import Cache, FullyAssociativeArray, SetAssociativeArray, ZCacheArray
from repro.replacement import LRU, SRRIP


class TestTrackedPolicy:
    def test_forwards_policy_behaviour(self):
        t = TrackedPolicy(LRU())
        t.on_insert(1)
        t.on_insert(2)
        t.on_access(1)
        assert t.select_victim([1, 2]) == 2

    def test_fully_associative_always_priority_one(self):
        # A fully-associative cache evicts the globally best candidate:
        # every eviction priority is exactly 1.0.
        t = TrackedPolicy(LRU())
        cache = Cache(FullyAssociativeArray(8), t)
        rng = random.Random(0)
        for _ in range(500):
            cache.access(rng.randrange(64))
        assert len(t.priorities) > 0
        assert all(p == 1.0 for p in t.priorities)

    def test_direct_mapped_priorities_spread(self):
        # A direct-mapped cache evicts whatever sits in the one slot: the
        # priorities spread across [0, 1].
        t = TrackedPolicy(LRU())
        cache = Cache(SetAssociativeArray(1, 16, hash_kind="h3"), t)
        rng = random.Random(1)
        for _ in range(3000):
            cache.access(rng.randrange(256))
        assert min(t.priorities) < 0.3
        assert max(t.priorities) > 0.9

    def test_priority_rank_correct_small_case(self):
        t = TrackedPolicy(LRU())
        for a in (1, 2, 3, 4, 5):
            t.on_insert(a)
        # Evicting the oldest of 5 blocks: rank 4 of 4 -> priority 1.0.
        t.on_evict(1)
        assert t.priorities[-1] == pytest.approx(1.0)
        # Evicting the newest: rank 0 -> priority 0.0.
        t.on_evict(5)
        assert t.priorities[-1] == pytest.approx(0.0)

    def test_single_resident_block_priority_one(self):
        t = TrackedPolicy(LRU())
        t.on_insert(9)
        t.on_evict(9)
        assert t.priorities == [1.0]

    def test_evicting_untracked_rejected(self):
        with pytest.raises(KeyError):
            TrackedPolicy(LRU()).on_evict(3)

    def test_double_insert_rejected(self):
        t = TrackedPolicy(LRU())
        t.on_insert(1)
        with pytest.raises(ValueError):
            t.on_insert(1)

    def test_reset_clears_priorities(self):
        t = TrackedPolicy(LRU())
        t.on_insert(1)
        t.on_evict(1)
        t.reset()
        assert t.priorities == []

    def test_srrip_aging_resynced(self):
        # SRRIP mutates candidate scores inside select_victim; the
        # tracker must pick up the changes or later ranks are wrong.
        t = TrackedPolicy(SRRIP(m_bits=2))
        for a in (1, 2, 3):
            t.on_insert(a)
        t.on_access(1)
        t.on_access(2)
        t.on_access(3)  # all rrpv 0 -> selection ages them
        t.select_victim([1, 2, 3])
        for a in (1, 2, 3):
            assert t._mirror[a] == (t.inner.score(a), a)

    def test_mirror_exact_under_traffic(self):
        t = TrackedPolicy(LRU())
        cache = Cache(ZCacheArray(4, 16, levels=2, hash_seed=1), t)
        rng = random.Random(2)
        for _ in range(2000):
            cache.access(rng.randrange(300))
        assert len(t._mirror) == len(cache)
        for addr in cache.resident():
            assert t._mirror[addr] == (t.inner.score(addr), addr)


class TestMeasureAssociativity:
    def test_end_to_end(self):
        rng = random.Random(3)
        trace = [(rng.randrange(512), False) for _ in range(4000)]
        dist, cache = measure_associativity(
            lambda: SetAssociativeArray(4, 16, hash_kind="h3"),
            LRU,
            trace,
        )
        assert len(dist) > 100
        assert cache.stats.accesses == 4000

    def test_warmup_discards_early_evictions(self):
        rng = random.Random(4)
        trace = [(rng.randrange(512), False) for _ in range(4000)]
        full, _ = measure_associativity(
            lambda: SetAssociativeArray(2, 16), LRU, trace, warmup=0
        )
        warm, _ = measure_associativity(
            lambda: SetAssociativeArray(2, 16), LRU, trace, warmup=2000
        )
        assert len(warm) < len(full)
