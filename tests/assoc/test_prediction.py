"""Tests for the simulation-free miss-rate predictor."""

import itertools

import pytest

from repro.assoc.prediction import (
    DesignPrediction,
    effective_lru_capacity,
    predict_designs,
    predict_miss_rate,
)
from repro.core import (
    Cache,
    FullyAssociativeArray,
    SetAssociativeArray,
    ZCacheArray,
)
from repro.replacement import LRU
from repro.workloads.analysis import reuse_profile
from repro.workloads.patterns import zipf

B = 512


@pytest.fixture(scope="module")
def friendly():
    """Recency-friendly trace + its reuse profile."""
    trace = list(itertools.islice(zipf(B * 4, skew=1.05, seed=3), 60_000))
    return trace, reuse_profile(trace)


class TestEffectiveCapacity:
    def test_formula(self):
        assert effective_lru_capacity(1024, 1) == 512
        assert effective_lru_capacity(1024, 1023) == 1023
        assert effective_lru_capacity(100, 4) == 80

    def test_monotone_in_candidates(self):
        caps = [effective_lru_capacity(1024, n) for n in (1, 2, 4, 16, 64)]
        assert caps == sorted(caps)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_lru_capacity(0, 4)
        with pytest.raises(ValueError):
            effective_lru_capacity(16, 0)


class TestAccuracy:
    def simulate(self, array, trace):
        cache = Cache(array, LRU())
        for addr in trace:
            cache.access(addr)
        return cache.stats.miss_rate

    def test_exact_for_fully_associative(self, friendly):
        trace, profile = friendly
        actual = self.simulate(FullyAssociativeArray(B), trace)
        predicted = predict_miss_rate(profile, B, B * 100)
        assert predicted == pytest.approx(actual, rel=0.01)

    def test_within_ten_percent_for_real_designs(self, friendly):
        trace, profile = friendly
        cases = [
            (SetAssociativeArray(4, B // 4, hash_kind="h3", hash_seed=1), 4),
            (ZCacheArray(4, B // 4, levels=2, hash_seed=2), 16),
            (ZCacheArray(4, B // 4, levels=3, hash_seed=3), 52),
        ]
        for array, n in cases:
            actual = self.simulate(array, trace)
            predicted = predict_miss_rate(profile, B, n)
            assert predicted == pytest.approx(actual, rel=0.13), (
                f"n={n}: predicted {predicted}, actual {actual}"
            )

    def test_prediction_monotone_in_candidates(self, friendly):
        _trace, profile = friendly
        rates = [predict_miss_rate(profile, B, n) for n in (1, 4, 16, 64)]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_documented_breakdown_on_anti_lru(self):
        # Cyclic scan slightly over capacity: real higher-assoc LRU
        # caches do WORSE, the model says better — the documented limit.
        trace = [i % (B + 64) for i in range(40_000)]
        profile = reuse_profile(trace)
        skew_actual = self.simulate(
            ZCacheArray(4, B // 4, levels=3, hash_seed=4), trace
        )
        predicted = predict_miss_rate(profile, B, 52)
        # The model predicts near-total missing; reality is better
        # because imperfect eviction accidentally retains scan blocks.
        assert predicted > skew_actual


class TestReport:
    def test_predict_designs(self, friendly):
        _trace, profile = friendly
        preds = predict_designs(
            profile, B, {"SA-4": 4, "Z4/16": 16, "Z4/52": 52}
        )
        assert [p.design for p in preds] == ["SA-4", "Z4/16", "Z4/52"]
        assert all("predicted=" in p.row() for p in preds)

    def test_relative_error(self):
        p = DesignPrediction("x", 4, 0.22, measured_miss_rate=0.20)
        assert p.relative_error == pytest.approx(0.1)
        assert "err=" in p.row()
        assert DesignPrediction("x", 4, 0.2).relative_error is None
