"""Golden-master determinism tests.

Every simulation in this repository must be bit-reproducible across
processes and platforms: the workload generators seed from stable
digests (not salted ``hash()``), hash families from explicit seeds, and
no code path consults global randomness. These tests freeze exact
values for a few fixed-seed runs; if one fails, reproducibility broke —
EXPERIMENTS.md's recorded numbers would silently drift between runs.

If a change *intentionally* alters simulation behaviour, update the
constants and note the change in EXPERIMENTS.md.
"""

import random

from repro import LRU, Cache, ZCacheArray
from repro.hashing import H3Hash
from repro.sim import CMPConfig, L2DesignConfig, TraceDrivenRunner
from repro.workloads import get_workload


class TestGoldenValues:
    def test_h3_fixed_outputs(self):
        h = H3Hash(1024, seed=3)
        assert [h(x) for x in (0, 1, 12345, 999999)] == [0, 745, 48, 573]

    def test_zcache_standalone_run(self):
        rng = random.Random(42)
        cache = Cache(ZCacheArray(4, 128, levels=3, hash_seed=7), LRU())
        for _ in range(20_000):
            cache.access(rng.randrange(2048))
        assert cache.stats.misses == 15_131
        assert cache.stats.relocations == 21_234
        assert cache.array.stats.tag_reads == 770_966

    def test_cmp_trace_driven_run(self):
        cfg = CMPConfig()
        runner = TraceDrivenRunner(
            cfg, get_workload("gcc"), instructions_per_core=1000, seed=5
        )
        captured = runner.capture()
        result = runner.replay(
            cfg.with_design(L2DesignConfig(kind="z", ways=4, levels=2))
        )
        assert captured.l1_misses == 1_210
        assert result.l2_misses == 1_173
        assert result.l2_hits == 37
        assert result.total_cycles == 24_117

    def test_workload_stream_prefix(self):
        # The trace prefix is part of the golden contract: any change to
        # the generators invalidates recorded experiment outputs. The
        # fourth value sits in the shared region (above 2^40): canneal
        # is multithreaded with sharing_frac 0.30.
        stream = get_workload("canneal").core_stream(0, 4096, seed=1)
        next(stream)
        prefix = [next(stream).address for _ in range(5)]
        assert prefix == [8, 13, 10, 1_099_511_627_856, 154]
