"""Tests for the load generator, including the sanitized concurrent soak."""

import pytest

from repro.analysis.sanitizer import make_wrapper
from repro.serve.baseline import DictLRUServe
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.service import ServeConfig, ZServeCache


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LoadGenConfig(num_workers=0)
        with pytest.raises(ValueError):
            LoadGenConfig(requests_per_worker=0)
        with pytest.raises(ValueError):
            LoadGenConfig(payload_bytes=-1)


class TestReplay:
    def test_replay_against_zserve(self):
        svc = ZServeCache(ServeConfig(num_shards=2, lines_per_way=64))
        cfg = LoadGenConfig(
            workload="gcc",
            num_workers=2,
            requests_per_worker=2_000,
            footprint_blocks=512,
        )
        result = run_loadgen(svc, cfg)
        assert result.requests == 4_000
        assert result.throughput_rps > 0
        assert 0.0 < result.hit_rate <= 1.0
        assert 0.0 < result.p50_us <= result.p95_us <= result.p99_us
        assert result.backend["mode"] == "twophase"
        svc.check_consistency()

    def test_replay_against_dictlru(self):
        base = DictLRUServe(capacity=512)
        cfg = LoadGenConfig(
            workload="gcc",
            num_workers=2,
            requests_per_worker=1_000,
            footprint_blocks=512,
        )
        result = run_loadgen(base, cfg)
        assert result.requests == 2_000
        assert result.backend["capacity"] == 512

    def test_replay_is_deterministic_in_traffic(self):
        # Latency varies run to run; the request stream must not.
        results = []
        for _ in range(2):
            svc = ZServeCache(ServeConfig(num_shards=2, lines_per_way=64))
            cfg = LoadGenConfig(
                workload="canneal",
                num_workers=1,
                requests_per_worker=2_000,
                footprint_blocks=512,
                seed=3,
            )
            results.append(run_loadgen(svc, cfg))
        assert results[0].hits == results[1].hits
        assert results[0].misses == results[1].misses

    def test_bytes_payloads_with_fingerprinting(self):
        # Every read re-verifies its value's digest; a single
        # mismatch would raise out of run_loadgen.
        svc = ZServeCache(ServeConfig(
            num_shards=2, lines_per_way=64, fingerprint=True))
        cfg = LoadGenConfig(
            workload="gcc",
            num_workers=2,
            requests_per_worker=1_500,
            footprint_blocks=512,
            payload_bytes=64,
        )
        result = run_loadgen(svc, cfg)
        assert result.hits > 0
        svc.check_consistency()

    def test_worker_failure_propagates(self):
        class Broken:
            """Backend whose reads always explode."""

            def get(self, key):
                raise RuntimeError("boom")

            def put(self, key, value):
                return None

            def invalidate(self, key):
                return False

            def snapshot(self):
                return {}

        with pytest.raises(RuntimeError, match="boom"):
            run_loadgen(
                Broken(),
                LoadGenConfig(num_workers=2, requests_per_worker=50),
            )


class TestSanitizedSoak:
    def test_concurrent_soak_zero_violations(self):
        # The acceptance-criteria soak in miniature (the full ≥100k
        # request version runs in benchmarks/run_serve_baseline.py and
        # scripts/serve_smoke.py): 4 workers over sanitized shards,
        # every walk checked, zero InvariantViolations tolerated —
        # run_loadgen re-raises the first worker exception.
        svc = ZServeCache(
            ServeConfig(num_shards=2, num_ways=4, lines_per_way=32),
            wrap_array=make_wrapper(seed=9),
        )
        cfg = LoadGenConfig(
            workload="canneal",
            num_workers=4,
            requests_per_worker=2_500,
            footprint_blocks=1_024,
            seed=9,
        )
        result = run_loadgen(svc, cfg)
        assert result.requests == 10_000
        svc.check_consistency()
        for shard in svc.shards:
            shard.cache.array.final_check()
        # The discipline actually exercised its edges under contention:
        # any stale handling shows up in the counters, never as
        # corruption.
        snap = svc.snapshot()
        assert snap["stale_retries"] >= 0
        assert snap["fallback_fills"] >= 0
