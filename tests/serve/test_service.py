"""Tests for the sharded service: routing, API, aggregate stats."""

import pytest

from repro.serve.baseline import DictLRUServe
from repro.serve.service import MODES, ServeConfig, ZServeCache, key_address


class TestKeyAddress:
    def test_deterministic_and_63_bit(self):
        for key in (0, 1, 2**63, "hello", b"hello", "", b""):
            a1, a2 = key_address(key), key_address(key)
            assert a1 == a2
            assert 0 <= a1 < 2**63

    def test_str_and_bytes_hash_identically(self):
        # Wire clients send str; in-process callers may use bytes.
        assert key_address("abc") == key_address(b"abc")

    def test_int_keys_avalanche(self):
        # Sequential ints must not land on sequential addresses (shard
        # routing uses address % shards).
        addrs = [key_address(i) for i in range(64)]
        assert len(set(a % 8 for a in addrs)) == 8

    def test_rejects_bad_keys(self):
        with pytest.raises(TypeError):
            key_address(True)
        with pytest.raises(TypeError):
            key_address(3.14)  # type: ignore[arg-type]


class TestConfig:
    def test_capacity(self):
        cfg = ServeConfig(num_shards=4, num_ways=4, lines_per_way=256)
        assert cfg.capacity == 4 * 4 * 256

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ServeConfig(num_shards=0)
        with pytest.raises(ValueError):
            ServeConfig(mode="optimistic")
        assert set(MODES) == {"twophase", "locked"}


class TestServiceApi:
    def make(self, **kwargs):
        kwargs.setdefault("num_shards", 4)
        kwargs.setdefault("lines_per_way", 32)
        return ZServeCache(ServeConfig(**kwargs))

    def test_put_get_invalidate(self):
        svc = self.make()
        svc.put("user:1", {"name": "ada"})
        hit, value = svc.get("user:1")
        assert hit and value == {"name": "ada"}
        assert svc.invalidate("user:1") is True
        hit, value = svc.get("user:1")
        assert not hit and value is None

    def test_every_key_type(self):
        svc = self.make()
        svc.put(42, "int")
        svc.put("42", "str")
        svc.put(b"42", "bytes")
        assert svc.get(42) == (True, "int")
        # str and bytes intentionally alias (wire protocol parity).
        assert svc.get("42") == (True, "bytes")
        assert svc.get(b"42") == (True, "bytes")

    def test_keys_spread_across_shards(self):
        svc = self.make()
        for i in range(400):
            svc.put(i, i)
        occupied = [len(shard) for shard in svc.shards]
        assert all(n > 0 for n in occupied)

    def test_aggregate_stats(self):
        svc = self.make()
        for i in range(100):
            svc.put(i, i)
        for i in range(100):
            svc.get(i)
        snap = svc.snapshot()
        assert snap["hits"] == svc.hits > 0
        assert snap["shards"] == 4
        assert snap["mode"] == "twophase"
        assert 0.0 < snap["hit_rate"] <= 1.0
        svc.check_consistency()

    def test_locked_mode_serves_identically(self):
        two = self.make()
        locked = self.make(mode="locked")
        for svc in (two, locked):
            for i in range(300):
                svc.put(i, i * 2)
        # Same geometry, same hash seeds: identical sequential
        # behaviour regardless of the locking discipline.
        assert {a for s in two.shards for a in s.cache.resident()} == {
            a for s in locked.shards for a in s.cache.resident()
        }


class TestDictLRUBaseline:
    def test_same_interface(self):
        base = DictLRUServe(capacity=8)
        base.put("a", 1)
        assert base.get("a") == (True, 1)
        assert base.get("b") == (False, None)
        assert base.invalidate("a") is True
        assert base.invalidate("a") is False
        assert "hit_rate" in base.snapshot()

    def test_lru_eviction_order(self):
        base = DictLRUServe(capacity=2)
        base.put("a", 1)
        base.put("b", 2)
        base.get("a")  # refresh a; b is now LRU
        base.put("c", 3)
        assert base.get("b") == (False, None)
        assert base.get("a") == (True, 1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DictLRUServe(capacity=0)
