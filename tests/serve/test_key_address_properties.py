"""Property suite for :func:`repro.serve.service.key_address`.

The serve layer's whole addressing story rests on three promises:
every key maps into the 63-bit block-address space, the mapping is
stable across processes (checkpointable clients re-derive addresses
after restart), and it spreads keys evenly enough that shard/way
bucketing does not hot-spot. Each promise gets hammered here —
hypothesis for the structural properties, a real subprocess for
cross-process stability, and a chi-square test for bucket skew.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.serve.service import key_address  # noqa: E402

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: any int python can hold, well past 64 bits, both signs
any_ints = st.integers(min_value=-(2**80), max_value=2**80)
keys = st.one_of(any_ints, st.text(max_size=64), st.binary(max_size=64))


@given(keys)
def test_addresses_live_in_the_63_bit_range(key):
    address = key_address(key)
    assert isinstance(address, int)
    assert 0 <= address < 2**63


@given(keys)
def test_mapping_is_deterministic(key):
    assert key_address(key) == key_address(key)


@given(any_ints)
def test_int_keys_alias_at_64_bits(key):
    # The int path masks to 64 bits before mixing: congruent keys
    # (mod 2**64) must collide, everything else is up to the mixer.
    assert key_address(key) == key_address(key & ((1 << 64) - 1))


@given(st.text(max_size=64))
def test_str_and_utf8_bytes_agree(key):
    assert key_address(key) == key_address(key.encode("utf-8"))


@given(st.booleans())
def test_bool_keys_are_rejected(key):
    # bool is an int subclass; silently hashing True as 1 would alias
    # two distinct client keys.
    with pytest.raises(TypeError):
        key_address(key)


@given(st.one_of(st.floats(), st.none(), st.tuples(st.integers())))
def test_unsupported_types_are_rejected(key):
    with pytest.raises(TypeError):
        key_address(key)


@settings(max_examples=10, deadline=None)
@given(
    st.lists(keys, min_size=1, max_size=8, unique_by=repr),
)
def test_cross_process_stability(sample):
    """A fresh interpreter derives identical addresses.

    This is the checkpointable-client contract: blake2b and splitmix64
    are seedless and ``PYTHONHASHSEED``-independent, unlike the builtin
    ``hash``. Keys ship to the child as JSON (bytes hex-encoded).
    """
    wire = [
        {"t": "b", "v": key.hex()}
        if isinstance(key, bytes)
        else {"t": "i", "v": key}
        if isinstance(key, int)
        else {"t": "s", "v": key}
        for key in sample
    ]
    script = (
        "import json, sys\n"
        "from repro.serve.service import key_address\n"
        "out = []\n"
        "for item in json.load(sys.stdin):\n"
        "    key = (bytes.fromhex(item['v']) if item['t'] == 'b'\n"
        "           else item['v'])\n"
        "    out.append(key_address(key))\n"
        "print(json.dumps(out))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps(wire),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": _SRC, "PYTHONHASHSEED": "random"},
        check=True,
    )
    remote = json.loads(proc.stdout)
    assert remote == [key_address(key) for key in sample]


def _chi_square(counts, expected):
    return sum((c - expected) ** 2 / expected for c in counts)


@pytest.mark.parametrize(
    "make_keys",
    [
        pytest.param(lambda n: list(range(n)), id="sequential-ints"),
        pytest.param(
            lambda n: [f"user:{i}:profile" for i in range(n)], id="strings"
        ),
        pytest.param(
            lambda n: [i.to_bytes(8, "little") for i in range(n)], id="bytes"
        ),
    ],
)
def test_bucket_skew_stays_within_chi_square_bounds(make_keys):
    """Sequential keys spread evenly over power-of-two buckets.

    Buckets are taken from the low bits (shard/way selection does the
    same), 64 buckets x 100 expected per bucket. For a uniform mapping
    the chi-square statistic has df=63 (mean 63, sd ~11.2); 110 is
    ~4 sd out. The inputs are fixed, so this never flakes — it fails
    only if the mixing actually regresses.
    """
    buckets = 64
    n = buckets * 100
    counts = [0] * buckets
    for key in make_keys(n):
        counts[key_address(key) % buckets] += 1
    stat = _chi_square(counts, n / buckets)
    assert stat < 110.0, f"chi-square {stat:.1f} over 64 buckets"
    # High bits must be just as healthy (shards use a different slice).
    high = [0] * buckets
    for key in make_keys(n):
        high[(key_address(key) >> 57) % buckets] += 1
    stat_high = _chi_square(high, n / buckets)
    assert stat_high < 110.0, f"high-bit chi-square {stat_high:.1f}"
