"""Tests for the ZServe concurrent cache service."""
