"""Tests for one shard: the lock + two-phase cache + payload store."""

import threading

import pytest

from repro.analysis.sanitizer import make_wrapper
from repro.replacement.base import ReplacementPolicy
from repro.serve.shard import (
    MISS,
    RECENCY_CAP,
    CacheShard,
    EvictionLog,
    payload_digest,
)


class TestBasicOps:
    def test_get_miss_does_not_allocate(self):
        shard = CacheShard(lines_per_way=16)
        assert shard.get(1) is MISS
        assert len(shard) == 0
        assert shard._c_read_misses.value == 1

    def test_put_then_get(self):
        shard = CacheShard(lines_per_way=16)
        shard.put(1, "k1", "v1")
        assert shard.get(1) == "v1"
        assert len(shard) == 1

    def test_put_overwrites(self):
        shard = CacheShard(lines_per_way=16)
        shard.put(1, "k", "old")
        shard.put(1, "k", "new")
        assert shard.get(1) == "new"
        assert len(shard) == 1

    def test_none_is_storable(self):
        shard = CacheShard(lines_per_way=16)
        shard.put(1, "k", None)
        assert shard.get(1) is None
        assert shard.get(2) is MISS

    def test_invalidate(self):
        shard = CacheShard(lines_per_way=16)
        shard.put(1, "k", "v")
        assert shard.invalidate(1) is True
        assert shard.get(1) is MISS
        assert shard.invalidate(1) is False
        assert len(shard) == 0

    def test_single_lock_mode(self):
        shard = CacheShard(lines_per_way=16, two_phase=False)
        for i in range(100):
            shard.put(i, i, i * 2)
        hits = sum(1 for i in range(100) if shard.get(i) is not MISS)
        assert hits > 0
        shard.check_consistency()


class TestEvictionBookkeeping:
    def test_payloads_follow_evictions(self):
        # Tiny shard, big working set: every resident block must have
        # its payload and no payload may outlive its block.
        shard = CacheShard(num_ways=4, lines_per_way=8, hash_seed=5)
        for i in range(2_000):
            shard.put(i, i, i)
        assert len(shard) <= 32
        shard.check_consistency()

    def test_resident_values_are_correct_after_churn(self):
        shard = CacheShard(num_ways=4, lines_per_way=8, hash_seed=5)
        for i in range(500):
            shard.put(i, i, i * 3)
        for addr in list(shard.cache.resident()):
            assert shard.get(addr) == addr * 3

    def test_consistency_check_detects_orphans(self):
        shard = CacheShard(lines_per_way=16)
        shard.put(1, "k", "v")
        shard._entries[999] = ("zombie", "zombie")
        with pytest.raises(AssertionError, match="out of sync"):
            shard.check_consistency()


class TestRecencyBuffer:
    def test_read_burst_drops_hits_once_the_buffer_is_full(self):
        # A read-only burst with no intervening writer must cap the
        # buffer at RECENCY_CAP and count every hit past it — the
        # counter is how operators see the policy going stale.
        shard = CacheShard(lines_per_way=16)
        shard.put(1, "k", "v")  # the put drains whatever was buffered
        assert shard._recency == []
        extra = 50
        for _ in range(RECENCY_CAP + extra):
            assert shard.get(1) == "v"
        assert len(shard._recency) == RECENCY_CAP
        assert shard._c_recency_dropped.value == extra
        # The next writer drains the buffer, re-arming the fast path.
        shard.put(2, "k2", "v2")
        assert shard._recency == []
        shard.get(1)
        assert len(shard._recency) == 1
        assert shard._c_recency_dropped.value == extra

    def test_dropped_counter_reaches_the_service_snapshot(self):
        from repro.serve.service import ServeConfig, ZServeCache

        svc = ZServeCache(ServeConfig(num_shards=1, lines_per_way=16))
        svc.put("k", "v")
        for _ in range(RECENCY_CAP + 7):
            svc.get("k")
        assert svc.snapshot()["recency_dropped"] == 7


class TestEvictionLogDelegation:
    def test_every_policy_method_is_explicitly_forwarded(self):
        # The wrapper must intercept the *whole* policy surface: a
        # method resolved from ReplacementPolicy's defaults would
        # consult the wrapper's own (empty) state, not the inner
        # policy's. Introspect the contract so a new policy method
        # cannot silently bypass the log.
        public = {
            name
            for name, member in vars(ReplacementPolicy).items()
            if callable(member) and not name.startswith("_")
        }
        assert public  # the contract is non-trivial
        for name in public:
            assert name in vars(EvictionLog), (
                f"EvictionLog does not forward ReplacementPolicy.{name}"
            )

    def test_forwarded_calls_reach_the_inner_policy(self):
        calls = []

        class Recorder(ReplacementPolicy):
            def on_insert(self, address):
                calls.append(("on_insert", address))

            def on_access(self, address, is_write=False):
                calls.append(("on_access", address, is_write))

            def on_evict(self, address):
                calls.append(("on_evict", address))

            def score(self, address):
                calls.append(("score", address))
                return address

            def select_victim(self, candidates):
                calls.append(("select_victim", tuple(candidates)))
                return candidates[0]

            def drain_score_updates(self):
                calls.append(("drain_score_updates",))
                return []

            def global_victim(self):
                calls.append(("global_victim",))
                return None

        log = EvictionLog(Recorder())
        log.on_insert(1)
        log.on_access(1, True)
        log.on_evict(2)
        assert log.score(3) == 3
        assert log.select_victim([4, 5]) == 4
        assert log.drain_score_updates() == []
        assert log.global_victim() is None
        assert [c[0] for c in calls] == [
            "on_insert", "on_access", "on_evict", "score",
            "select_victim", "drain_score_updates", "global_victim",
        ]
        # on_evict is the one method with wrapper-side behavior.
        assert log.drain_evicted() == [2]
        assert log.drain_evicted() == []


class TestFingerprint:
    def test_digest_only_covers_bytes(self):
        assert payload_digest(b"abc") == payload_digest(bytearray(b"abc"))
        assert payload_digest("abc") is None
        assert payload_digest(42) is None

    def test_roundtrip_with_fingerprint(self):
        shard = CacheShard(lines_per_way=16, fingerprint=True)
        shard.put(1, "k", b"payload")
        assert shard.get(1) == b"payload"
        shard.put(2, "k2", 99)  # non-bytes payloads skip the digest
        assert shard.get(2) == 99

    def test_corrupted_payload_is_detected_on_read(self):
        shard = CacheShard(lines_per_way=16, fingerprint=True)
        shard.put(1, "k", b"good")
        key, _, fp = shard._entries[1]
        shard._entries[1] = (key, b"evil", fp)
        with pytest.raises(AssertionError, match="fingerprint mismatch"):
            shard.get(1)

    def test_locked_mode_verifies_too(self):
        shard = CacheShard(lines_per_way=16, two_phase=False, fingerprint=True)
        shard.put(1, "k", b"good")
        assert shard.get(1) == b"good"
        key, _, fp = shard._entries[1]
        shard._entries[1] = (key, b"evil", fp)
        with pytest.raises(AssertionError, match="fingerprint mismatch"):
            shard.get(1)


class TestConcurrentShard:
    def test_concurrent_puts_converge(self):
        shard = CacheShard(num_ways=4, lines_per_way=64, hash_seed=2)
        errors = []

        def worker(base):
            try:
                for i in range(1_500):
                    addr = (base * 7 + i * 13) % 4_096
                    shard.put(addr, addr, addr)
                    shard.get((addr * 31) % 4_096)
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        shard.check_consistency()
        shard.cache.array.check_invariants()

    def test_concurrent_puts_sanitized(self):
        shard = CacheShard(
            num_ways=4,
            lines_per_way=32,
            hash_seed=3,
            wrap_array=make_wrapper(seed=3),
        )
        errors = []

        def worker(base):
            try:
                for i in range(800):
                    addr = (base * 11 + i * 17) % 2_048
                    shard.put(addr, addr, addr)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"sanitizer violation under the shard lock: {errors[0]}"
        shard.check_consistency()
        shard.cache.array.final_check()
