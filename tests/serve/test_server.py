"""Tests for the TCP front end and its line protocol."""

import threading

import pytest

from repro.serve.server import ServeClient, ZServeServer
from repro.serve.service import ServeConfig, ZServeCache


@pytest.fixture()
def server():
    cache = ZServeCache(ServeConfig(num_shards=2, lines_per_way=32))
    srv = ZServeServer(cache, port=0)
    srv.serve_in_background()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServeClient(host, port) as c:
        yield c


class TestProtocol:
    def test_ping(self, client):
        assert client.ping() is True

    def test_put_get_roundtrip(self, client):
        client.put("k1", "v1")
        assert client.get("k1") == "v1"
        assert client.get("missing") is None

    def test_delete(self, client):
        client.put("k", "v")
        assert client.delete("k") is True
        assert client.delete("k") is False
        assert client.get("k") is None

    def test_stats(self, client):
        client.put("k", "v")
        client.get("k")
        stats = client.stats()
        assert stats["shards"] == 2
        assert stats["hits"] >= 1

    def test_bad_requests_get_err(self, client):
        assert client.request("BOGUS").startswith("ERR")
        assert client.request("GET too many args").startswith("ERR")
        assert client.request("") == "ERR empty request"
        # The connection survives a bad request.
        assert client.ping() is True

    def test_dispatch_without_socket(self):
        # The protocol logic is testable without any networking.
        cache = ZServeCache(ServeConfig(num_shards=1, lines_per_way=16))
        srv = ZServeServer.__new__(ZServeServer)
        srv.cache = cache
        assert srv.dispatch("PING") == "PONG"
        assert srv.dispatch("PUT a 1") == "OK"
        assert srv.dispatch("GET a") == "HIT 1"
        assert srv.dispatch("DEL a") == "OK 1"
        assert srv.dispatch("GET a") == "MISS"
        assert srv.dispatch("") == "ERR empty request"


class TestConcurrentClients:
    def test_parallel_connections(self, server):
        host, port = server.address
        errors = []

        def hammer(base):
            try:
                with ServeClient(host, port) as c:
                    for i in range(150):
                        key = f"k{(base * 37 + i) % 500}"
                        c.put(key, f"v{i}")
                        c.get(key)
                    assert c.ping()
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        server.cache.check_consistency()
