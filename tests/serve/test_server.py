"""Tests for the TCP front end and its line protocol."""

import socket
import threading

import pytest

from repro.serve.server import ServeClient, ZServeServer
from repro.serve.service import ServeConfig, ZServeCache


@pytest.fixture()
def server():
    cache = ZServeCache(ServeConfig(num_shards=2, lines_per_way=32))
    srv = ZServeServer(cache, port=0)
    srv.serve_in_background()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServeClient(host, port) as c:
        yield c


class TestProtocol:
    def test_ping(self, client):
        assert client.ping() is True

    def test_put_get_roundtrip(self, client):
        client.put("k1", "v1")
        assert client.get("k1") == "v1"
        assert client.get("missing") is None

    def test_delete(self, client):
        client.put("k", "v")
        assert client.delete("k") is True
        assert client.delete("k") is False
        assert client.get("k") is None

    def test_stats(self, client):
        client.put("k", "v")
        client.get("k")
        stats = client.stats()
        assert stats["shards"] == 2
        assert stats["hits"] >= 1

    def test_bad_requests_get_err(self, client):
        assert client.request("BOGUS").startswith("ERR")
        assert client.request("GET too many args").startswith("ERR")
        assert client.request("") == "ERR empty request"
        # The connection survives a bad request.
        assert client.ping() is True

    def test_dispatch_without_socket(self):
        # The protocol logic is testable without any networking.
        cache = ZServeCache(ServeConfig(num_shards=1, lines_per_way=16))
        srv = ZServeServer.__new__(ZServeServer)
        srv.cache = cache
        assert srv.dispatch("PING") == "PONG"
        assert srv.dispatch("PUT a 1") == "OK"
        assert srv.dispatch("GET a") == "HIT 1"
        assert srv.dispatch("DEL a") == "OK 1"
        assert srv.dispatch("GET a") == "MISS"
        assert srv.dispatch("") == "ERR empty request"


class TestConcurrentClients:
    def test_parallel_connections(self, server):
        host, port = server.address
        errors = []

        def hammer(base):
            try:
                with ServeClient(host, port) as c:
                    for i in range(150):
                        key = f"k{(base * 37 + i) % 500}"
                        c.put(key, f"v{i}")
                        c.get(key)
                    assert c.ping()
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        server.cache.check_consistency()


class TestClientLifecycle:
    def test_close_is_idempotent(self, server):
        host, port = server.address
        client = ServeClient(host, port)
        assert client.ping() is True
        client.close()
        client.close()  # second close must be a no-op, not EBADF

    def test_context_manager_after_manual_close(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            client.put("k", "v")
            client.close()
        # __exit__ closed an already-closed client without raising.

    def test_server_closing_the_connection_raises_connection_error(self):
        # A stub that answers one request and hangs up: the client's
        # next read sees EOF and must surface the typed error, not an
        # empty-reply ValueError. (ZServeServer never hangs up first —
        # its handler threads serve until client EOF — so the stub is
        # the only deterministic way onto this path.)
        lsock = socket.socket()
        lsock.bind(("127.0.0.1", 0))
        lsock.listen(1)
        host, port = lsock.getsockname()

        def serve_once():
            conn, _ = lsock.accept()
            rfile = conn.makefile("rwb")
            rfile.readline()
            rfile.write(b"PONG\n")
            rfile.flush()
            conn.close()

        threading.Thread(target=serve_once, daemon=True).start()
        client = ServeClient(host, port)
        try:
            assert client.ping() is True
            with pytest.raises(ConnectionError, match="server closed"):
                client.request("PING")
        finally:
            client.close()
            lsock.close()
