"""Tests for the H3 universal hash family."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import H3Hash


class TestConstruction:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            H3Hash(num_lines=100)

    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError):
            H3Hash(num_lines=0)

    def test_index_bits(self):
        assert H3Hash(1024).index_bits == 10
        assert H3Hash(1).index_bits == 0

    def test_matrix_rows_nonzero(self):
        h = H3Hash(4096, seed=3)
        assert all(row != 0 for row in h.matrix())
        assert len(h.matrix()) == 12


class TestBehaviour:
    def test_deterministic(self):
        h = H3Hash(256, seed=1)
        assert h(0xABCDEF) == h(0xABCDEF)

    def test_same_seed_same_function(self):
        a, b = H3Hash(256, seed=7), H3Hash(256, seed=7)
        assert all(a(x) == b(x) for x in range(1000))

    def test_different_seeds_differ(self):
        a, b = H3Hash(256, seed=1), H3Hash(256, seed=2)
        assert any(a(x) != b(x) for x in range(100))

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            H3Hash(256)(address=-1)

    def test_zero_address_maps_to_zero(self):
        # H3 is GF(2)-linear: h(0) = 0 always.
        for seed in range(5):
            assert H3Hash(256, seed=seed)(0) == 0

    def test_gf2_linearity(self):
        # h(a xor b) == h(a) xor h(b) — the family's defining property.
        h = H3Hash(1024, seed=11)
        pairs = [(3, 17), (0xFFF, 0xABC), (123456, 654321)]
        for a, b in pairs:
            assert h(a ^ b) == h(a) ^ h(b)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    @settings(max_examples=200)
    def test_output_in_range(self, address):
        h = H3Hash(512, seed=5)
        assert 0 <= h(address) < 512


class TestDistribution:
    def test_roughly_uniform(self):
        h = H3Hash(64, seed=9)
        counts = [0] * 64
        for x in range(64 * 200):
            counts[h(x)] += 1
        # Every bucket should get 200 +- generous slack.
        assert min(counts) > 100
        assert max(counts) < 350

    def test_memoisation_consistent(self):
        h = H3Hash(128, seed=2)
        first = [h(x) for x in range(500)]
        second = [h(x) for x in range(500)]
        assert first == second
