"""Tests for bit-selection, the strong mixer, and family construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import BitSelectHash, MixHash, make_hash_family
from repro.hashing.mixers import splitmix64


class TestBitSelect:
    def test_low_bits(self):
        h = BitSelectHash(256)
        assert h(0x12345) == 0x45
        assert h(0) == 0
        assert h(255) == 255
        assert h(256) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BitSelectHash(16)(-5)

    def test_strided_pathology(self):
        # Strides equal to num_lines all collide — the classic conflict
        # pattern hashing avoids.
        h = BitSelectHash(64)
        indexes = {h(base * 64) for base in range(100)}
        assert indexes == {0}


class TestSplitmix:
    def test_64bit_range(self):
        for v in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(v) < 2**64

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        a, b = splitmix64(12345), splitmix64(12345 ^ 1)
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_deterministic(self, v):
        assert splitmix64(v) == splitmix64(v)


class TestMixHash:
    def test_range_and_determinism(self):
        h = MixHash(1024, seed=4)
        vals = [h(x) for x in range(2000)]
        assert all(0 <= v < 1024 for v in vals)
        assert vals == [h(x) for x in range(2000)]

    def test_seed_independence(self):
        a, b = MixHash(1024, seed=1), MixHash(1024, seed=2)
        same = sum(1 for x in range(4096) if a(x) == b(x))
        # Two independent hashes agree about 1/1024 of the time.
        assert same < 40

    def test_breaks_strided_pathology(self):
        h = MixHash(64, seed=0)
        indexes = {h(base * 64) for base in range(100)}
        assert len(indexes) > 30


class TestMakeFamily:
    def test_one_function_per_way(self):
        fam = make_hash_family("h3", 4, 256)
        assert len(fam) == 4

    def test_ways_are_independent(self):
        fam = make_hash_family("h3", 2, 256, seed=0)
        same = sum(1 for x in range(4096) if fam[0](x) == fam[1](x))
        assert same < 4096 * 0.05

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_hash_family("sha1", 2, 64)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            make_hash_family("h3", 0, 64)

    def test_bitsel_family_all_equal(self):
        fam = make_hash_family("bitsel", 4, 64)
        assert all(f(123) == fam[0](123) for f in fam)

    def test_reproducible_across_runs(self):
        a = make_hash_family("mix", 3, 128, seed=42)
        b = make_hash_family("mix", 3, 128, seed=42)
        assert all(fa(x) == fb(x) for fa, fb in zip(a, b) for x in range(100))
