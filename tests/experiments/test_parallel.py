"""Tests for the parallel sweep engine (repro.experiments.parallel)."""

import json
import os

import pytest

from repro.experiments.parallel import (
    ParallelSweepOutcome,
    SweepCheckpoint,
    SweepJob,
    default_jobs,
    derive_job_seed,
    run_parallel_sweeps,
    run_sweep_cli,
)
from repro.experiments.runner import (
    ExperimentScale,
    collect_design_sweeps,
    run_design_sweep,
)
from repro.obs import Heartbeat, ObsContext
from repro.sim import CMPConfig, L2DesignConfig

WORKLOADS = ("gcc", "canneal")
DESIGNS = (
    L2DesignConfig(kind="sa", ways=4, hash_kind="h3"),
    L2DesignConfig(kind="z", ways=4, levels=2),
)
SCALE = ExperimentScale(instructions_per_core=600, workloads=WORKLOADS, seed=5)


def mini_sweep(**kw):
    kw.setdefault("workloads", WORKLOADS)
    kw.setdefault("designs", DESIGNS)
    kw.setdefault("scale", SCALE)
    return run_parallel_sweeps(**kw)


class TestJobIdentity:
    def test_job_key_and_scope(self):
        job = SweepJob("gcc", DESIGNS[1], "lru", seed=1)
        assert job.key == "gcc|Z4/16-S|lru"
        assert job.scope(include_workload=True) == "gcc.Z4_16-S.lru"
        assert job.scope(include_workload=False) == "Z4_16-S.lru"

    def test_seed_is_deterministic_and_distinct(self):
        a = derive_job_seed(1, "gcc|SA-4h-S|lru")
        assert a == derive_job_seed(1, "gcc|SA-4h-S|lru")
        assert a != derive_job_seed(2, "gcc|SA-4h-S|lru")
        assert a != derive_job_seed(1, "gcc|SA-4h-S|opt")

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestDeterministicMerge:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = mini_sweep(jobs=1)
        parallel = mini_sweep(jobs=2)
        assert set(serial.sweeps) == set(parallel.sweeps)
        for w in serial.sweeps:
            assert serial.sweeps[w].results == parallel.sweeps[w].results
        assert not parallel.degraded
        assert all(
            o.status == "parallel" for o in parallel.outcomes.values()
        )

    def test_parallel_matches_run_design_sweep(self):
        direct = run_design_sweep("gcc", DESIGNS, scale=SCALE)
        via_engine = run_design_sweep("gcc", DESIGNS, scale=SCALE, jobs=2)
        assert direct.results == via_engine.results

    def test_collect_design_sweeps_parallel_path(self):
        serial = collect_design_sweeps(WORKLOADS, DESIGNS, scale=SCALE)
        parallel = collect_design_sweeps(
            WORKLOADS, DESIGNS, scale=SCALE, jobs=2
        )
        for w in WORKLOADS:
            assert serial[w].results == parallel[w].results

    def test_worker_metrics_merge_into_parent_registry(self):
        obs_serial, obs_parallel = ObsContext(), ObsContext()
        mini_sweep(jobs=1, obs=obs_serial)
        mini_sweep(jobs=2, obs=obs_parallel)
        snap_serial = obs_serial.metrics.snapshot()
        snap_parallel = obs_parallel.metrics.snapshot()
        assert snap_parallel
        # counters and histograms merge deterministically; the reservoir
        # quantile estimates are worker-local (only counts merge), so
        # compare everything except retained-sample summaries.
        scalar_serial = {
            k: v
            for k, v in snap_serial.items()
            if not (isinstance(v, dict) and "retained" in v)
        }
        scalar_parallel = {
            k: v
            for k, v in snap_parallel.items()
            if not (isinstance(v, dict) and "retained" in v)
        }
        assert scalar_serial == scalar_parallel

    def test_parent_profiler_sees_worker_phases(self):
        obs = ObsContext()
        mini_sweep(jobs=2, obs=obs)
        phases = obs.profiler.report()
        assert any(p.startswith("capture.") for p in phases)
        assert any(p.startswith("replay.") for p in phases)


class TestCheckpoint:
    def test_resume_restores_everything(self, tmp_path):
        path = tmp_path / "ck.json"
        first = mini_sweep(jobs=2, checkpoint=str(path))
        assert path.exists()
        second = mini_sweep(jobs=2, checkpoint=str(path))
        assert second.restored == len(first.outcomes)
        assert all(
            o.status == "checkpoint" for o in second.outcomes.values()
        )
        for w in first.sweeps:
            assert first.sweeps[w].results == second.sweeps[w].results

    def test_stale_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "ck.json"
        mini_sweep(jobs=1, checkpoint=str(path))
        stale_scale = ExperimentScale(
            instructions_per_core=600, workloads=WORKLOADS, seed=6
        )
        again = mini_sweep(jobs=1, checkpoint=str(path), scale=stale_scale)
        assert again.restored == 0

    def test_engine_change_invalidates_checkpoint(self, tmp_path):
        # The turbo engine silently falls back to reference for designs
        # it cannot vectorize, so a checkpoint written under one engine
        # must never seed a resume under the other: mixed-engine result
        # sets would be unattributable. The fingerprint carries the
        # engine to force a clean re-run instead.
        path = tmp_path / "ck.json"
        first = mini_sweep(
            jobs=1, checkpoint=str(path), cfg=CMPConfig(engine="reference")
        )
        assert first.restored == 0 and path.exists()
        again = mini_sweep(
            jobs=1, checkpoint=str(path), cfg=CMPConfig(engine="turbo")
        )
        assert again.restored == 0
        # Same engine again: the rewritten checkpoint is honoured.
        third = mini_sweep(
            jobs=1, checkpoint=str(path), cfg=CMPConfig(engine="turbo")
        )
        assert third.restored == len(again.outcomes)

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json", encoding="utf-8")
        ck = SweepCheckpoint(path, fingerprint={"v": 1})
        assert ck.load() == {}

    def test_record_is_atomic_json(self, tmp_path):
        path = tmp_path / "ck.json"
        mini_sweep(jobs=1, checkpoint=str(path))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert set(data) == {"fingerprint", "results"}
        assert len(data["results"]) == len(WORKLOADS) * len(DESIGNS)
        assert not path.with_name(path.name + ".tmp").exists()


def _crash_worker_once(policy):
    """Picklable policy wrapper that hard-kills the first worker to run it.

    The crash flag travels via the environment (workers inherit it);
    the first process through dies with ``os._exit`` — no exception,
    no cleanup, exactly a killed worker — and every later call (other
    workers after the flag lands, the parent's degraded-serial rerun,
    a resumed campaign) passes through untouched.
    """
    flag = os.environ.get("ZCACHE_TEST_CRASH_FLAG")
    if flag and not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as f:
            f.write("crashed")
        os._exit(17)
    return policy


class TestCrashResume:
    def test_worker_crash_checkpoints_then_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        flag = tmp_path / "crash.flag"
        ck = tmp_path / "ck.json"
        monkeypatch.setenv("ZCACHE_TEST_CRASH_FLAG", str(flag))
        crashed = mini_sweep(
            jobs=2, checkpoint=str(ck), policy_wrapper=_crash_worker_once
        )
        # The worker genuinely died mid-campaign...
        assert flag.exists()
        assert crashed.degraded
        # ...yet the campaign completed every job and checkpointed it.
        assert not crashed.failed
        data = json.loads(ck.read_text(encoding="utf-8"))
        assert len(data["results"]) == len(WORKLOADS) * len(DESIGNS)

        # A resumed run restores everything and recomputes nothing.
        resumed = mini_sweep(
            jobs=2, checkpoint=str(ck), policy_wrapper=_crash_worker_once
        )
        assert resumed.restored == len(crashed.outcomes)

        # Both the crashed-and-degraded run and the resume are
        # bit-identical to an undisturbed serial sweep.
        clean = mini_sweep(jobs=1)
        for w in clean.sweeps:
            assert clean.sweeps[w].results == crashed.sweeps[w].results
            assert clean.sweeps[w].results == resumed.sweeps[w].results

    def test_partial_checkpoint_resume_is_bit_identical(self, tmp_path):
        # Simulate the parent dying mid-campaign: keep only half the
        # checkpoint entries (the state an interrupted run leaves) and
        # resume — restored + recomputed must equal the clean run.
        ck = tmp_path / "ck.json"
        full = mini_sweep(jobs=1, checkpoint=str(ck))
        data = json.loads(ck.read_text(encoding="utf-8"))
        keys = sorted(data["results"])
        kept = keys[: len(keys) // 2]
        data["results"] = {k: data["results"][k] for k in kept}
        ck.write_text(json.dumps(data), encoding="utf-8")

        resumed = mini_sweep(jobs=2, checkpoint=str(ck))
        assert resumed.restored == len(kept)
        statuses = {o.status for o in resumed.outcomes.values()}
        assert "checkpoint" in statuses and statuses - {"checkpoint"}
        for w in full.sweeps:
            assert full.sweeps[w].results == resumed.sweeps[w].results


class TestRobustness:
    def test_serial_failure_is_marked_and_sweep_continues(self):
        calls = []

        def exploding_wrapper(policy):
            calls.append(policy)
            raise RuntimeError("boom")

        outcome = mini_sweep(jobs=1, policy_wrapper=exploding_wrapper)
        assert calls  # the wrapper genuinely ran
        assert len(outcome.failed) == len(WORKLOADS) * len(DESIGNS)
        for o in outcome.failed:
            assert o.status == "failed"
            assert "RuntimeError" in o.error
        # failed jobs leave no results behind
        assert all(not s.results for s in outcome.sweeps.values())

    def test_unpicklable_job_degrades_to_serial(self):
        # A lambda cannot cross the process boundary: every submission
        # fails, the retry fails too, and the degraded-serial fallback
        # (where the lambda works fine) completes the sweep.
        outcome = mini_sweep(jobs=2, policy_wrapper=lambda p: p)
        assert outcome.degraded
        assert not outcome.failed
        assert all(
            o.status == "serial" for o in outcome.outcomes.values()
        )
        clean = mini_sweep(jobs=1)
        for w in clean.sweeps:
            assert clean.sweeps[w].results == outcome.sweeps[w].results

    def test_degraded_heartbeat_reports_serial_fallback(self, tmp_path):
        # The degraded path must stay observable: every in-parent rerun
        # beats a "[degraded-serial]" line with aggregate progress.
        log = tmp_path / "hb.log"
        obs = ObsContext(heartbeat=Heartbeat(path=log))
        outcome = mini_sweep(jobs=2, policy_wrapper=lambda p: p, obs=obs)
        assert outcome.degraded
        text = log.read_text(encoding="utf-8")
        n_jobs = len(WORKLOADS) * len(DESIGNS)
        assert text.count("[degraded-serial]") == n_jobs
        # progress counters keep aggregating across the fallback
        assert f"({n_jobs}/{n_jobs})" in text
        assert obs.heartbeat.beats >= n_jobs

    def test_degraded_phase_timings_fold_into_parent(self):
        # Serial-fallback jobs run in the parent process, but their
        # phase timings must land in the same profiler sections the
        # worker path reports, so wall-time attribution stays whole.
        obs = ObsContext()
        outcome = mini_sweep(jobs=2, policy_wrapper=lambda p: p, obs=obs)
        assert outcome.degraded
        phases = obs.profiler.report()
        for w in WORKLOADS:
            assert any(p.startswith("capture.") and w in p for p in phases)
        replay = [p for p in phases if p.startswith("replay.")]
        assert len(replay) == len(WORKLOADS) * len(DESIGNS)
        assert all(seconds >= 0.0 for seconds in phases.values())

    def test_failed_property_empty_on_success(self):
        assert ParallelSweepOutcome().failed == []


class TestSweepCli:
    def test_cli_runs_and_reports(self, capsys, tmp_path):
        json_path = tmp_path / "out.json"
        rc = run_sweep_cli(
            [
                "--workloads", "gcc",
                "--instructions", "400",
                "--jobs", "2",
                "--json", str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "gcc" in out and "SA-4h-S" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert all(v["status"] == "parallel" for v in payload.values())

    def test_cli_checkpoint_resume(self, capsys, tmp_path):
        ck = tmp_path / "ck.json"
        args = [
            "--workloads", "gcc", "--instructions", "400",
            "--jobs", "1", "--checkpoint", str(ck),
        ]
        assert run_sweep_cli(args) == 0
        capsys.readouterr()
        assert run_sweep_cli(args) == 0
        assert "restored" in capsys.readouterr().out

    def test_cli_progress_log(self, capsys, tmp_path):
        log = tmp_path / "progress.log"
        rc = run_sweep_cli(
            [
                "--workloads", "gcc", "--instructions", "400",
                "--jobs", "1", "--progress-log", str(log),
            ]
        )
        assert rc == 0
        assert "captured L2 stream" in log.read_text(encoding="utf-8")


@pytest.mark.parametrize("jobs", [1, 2])
def test_timeout_option_accepted(jobs):
    outcome = mini_sweep(jobs=jobs, timeout=300.0)
    assert not outcome.failed
