"""Integration tests for the zcache-repro CLI."""

import pytest

from repro.cli import main


class TestStaticExperiments:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "32 cores" in out
        assert "Scaled configuration" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Z4/52" in out
        assert "2.00x (2.0x)" in out

    def test_merit(self, capsys):
        assert main(["merit"]) == 0
        out = capsys.readouterr().out
        assert "W=4 L=3: R=52" in out

    def test_roster(self, capsys):
        assert main(["roster"]) == 0
        out = capsys.readouterr().out
        assert "canneal" in out
        assert "cpu2K6rand29" in out
        assert len(out.strip().splitlines()) == 72


class TestSimulationExperiments:
    def test_fig3_with_subset(self, capsys):
        # canneal is miss-heavy enough that every panel evicts at this
        # tiny scale (small footprints never fill the efficiently-
        # packing skew/z arrays, leaving their panels empty).
        code = main(
            ["fig3", "--workloads", "canneal", "--instructions", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "canneal" in out
        assert "zcache" in out
        assert "wupwise" not in out  # subset respected

    def test_fig4_with_subset(self, capsys):
        code = main(
            ["fig4", "--workloads", "gcc,canneal", "--instructions", "800"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Z4/52-S" in out
        assert "mpki" in out and "ipc" in out

    def test_bandwidth_with_subset(self, capsys):
        code = main(
            ["bandwidth", "--workloads", "gcc", "--instructions", "800"]
        )
        assert code == 0
        assert "demand=" in capsys.readouterr().out


class TestArgumentHandling:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            main([])
