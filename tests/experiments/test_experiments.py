"""Tests for the experiment harnesses (small scales).

These check that each figure/table generator runs, produces the right
structure, and — where cheap enough — that the paper's qualitative
claims hold at test scale.
"""

import pytest

from repro.experiments import (
    DESIGNS_FIG4,
    ExperimentScale,
    baseline_design,
    representative_workloads,
    run_design_sweep,
)
from repro.experiments import bandwidth, fig2, fig3, fig4, fig5, merit, table1, table2

TINY = ExperimentScale(
    instructions_per_core=800,
    workloads=("gcc", "cactusADM"),
    seed=2,
)


class TestRunner:
    def test_baseline_is_hashed_sa4(self):
        base = baseline_design()
        assert base.kind == "sa"
        assert base.ways == 4
        assert base.hash_kind == "h3"

    def test_fig4_designs_match_paper(self):
        labels = [d.label() for d in DESIGNS_FIG4]
        assert labels == [
            "SA-4h-S", "SA-16h-S", "SA-32h-S", "SK-4-S", "Z4/16-S", "Z4/52-S",
        ]

    def test_sweep_returns_all_cells(self):
        sweep = run_design_sweep(
            "gcc", DESIGNS_FIG4[:2], policies=("lru",), scale=TINY
        )
        assert len(sweep.results) == 2

    def test_representative_workloads_exist(self):
        from repro.workloads import WORKLOADS

        assert all(w in WORKLOADS for w in representative_workloads())


class TestFig2:
    def test_analytic_and_simulated_agree(self):
        # The cache must be large relative to n: sampling with
        # repetition from B blocks yields ~B(1-(1-1/B)^n) unique
        # candidates, so small B understates n=64 visibly.
        result = fig2.run(cache_blocks=1024, accesses=25_000)
        for n in fig2.CANDIDATE_COUNTS:
            _cdf, ks = result.simulated[n]
            assert ks < 0.15
        assert len(result.rows()) > 5


class TestFig3:
    def test_cells_cover_panels(self):
        # Enough instructions that every design (including the
        # efficiently-filling skew/z arrays) starts evicting.
        cells = fig3.run(
            scale=ExperimentScale(instructions_per_core=3000, seed=2),
            workloads=("wupwise",),
        )
        panels = {c.panel for c in cells}
        assert len(panels) == 4
        for c in cells:
            assert 0 < c.distribution.mean() <= 1.0

    def test_skew_closest_to_uniformity(self):
        cells = fig3.run(
            scale=ExperimentScale(instructions_per_core=3000, seed=2),
            workloads=("mgrid",),
        )
        by_design = {c.design: c for c in cells}
        # The un-hashed 4-way SA must deviate more than the skew cache.
        assert (
            by_design["SK-4-S"].distribution.ks_to_uniformity(4)
            < by_design["SA-4-S"].distribution.ks_to_uniformity(4)
        )


class TestTables:
    def test_table1_prints_paper_values(self):
        lines = "\n".join(table1.rows())
        assert "32 cores" in lines
        assert "8.00 MB" in lines
        assert "200 cycles" in lines

    def test_table2_checks_hold(self):
        c = table2.checks()
        assert c.serial_hit_ratio_32_vs_4 == pytest.approx(2.0, rel=0.05)
        assert c.parallel_hit_ratio_32_vs_4 == pytest.approx(3.3, rel=0.05)
        assert c.z52_keeps_4way_hit_energy
        assert c.z52_keeps_4way_latency
        assert 1.0 < c.z52_vs_sa32_miss_energy < 1.7


class TestFig4:
    def test_structure_and_metrics(self):
        result = fig4.run(scale=TINY, policies=("lru",))
        # 5 non-baseline designs x 1 policy x 2 metrics.
        assert len(result.series) == 10
        s = result.get("mpki", "lru", "Z4/52-S")
        assert len(s.points) == 2
        assert s.values() == sorted(s.values())

    def test_zcache_never_slower_than_baseline_latency(self):
        result = fig4.run(scale=TINY, policies=("lru",))
        z = result.get("ipc", "lru", "Z4/52-S")
        # zcaches keep 4-way latency: IPC improvement >= ~1 everywhere.
        assert min(z.values()) > 0.97


class TestFig5:
    def test_cells_cover_groups(self):
        cells = fig5.run(scale=TINY, policies=("lru",))
        groups = {c.group for c in cells}
        assert "geomean-all" in groups
        assert "geomean-top10" in groups
        for c in cells:
            assert c.ipc_improvement > 0
            assert c.bips_per_watt_improvement > 0

    def test_baseline_normalised_to_one(self):
        cells = fig5.run(scale=TINY, policies=("lru",))
        base = [
            c for c in cells
            if c.design == "SA-4h-S" and c.group == "geomean-all"
        ]
        assert base[0].ipc_improvement == pytest.approx(1.0)
        assert base[0].bips_per_watt_improvement == pytest.approx(1.0)


class TestBandwidth:
    def test_points_and_loads(self):
        points = bandwidth.run(scale=TINY)
        assert len(points) == 2
        for p in points:
            assert 0 <= p.demand_load_per_bank < 1.0
            assert p.tag_load_per_bank >= p.demand_load_per_bank


class TestMerit:
    def test_formula_vs_measured(self):
        rows = merit.run(configs=((4, 2), (4, 3)), accesses=6_000)
        for row in rows:
            assert row.r_measured <= row.r_formula + 1e-9
            assert row.r_measured > 0.85 * row.r_formula

    def test_walk_latency_paper_example(self):
        # Fig. 1g: W=3, L=3, 4-cycle tag reads -> 12 cycles.
        assert merit.walk_latency_cycles(3, 3, t_tag=4) == 12
