"""Golden-file regression tests for the paper's headline curves.

The differential harness proves turbo == reference *today*; these
goldens pin the shared behaviour over *time*, so a refactor that shifts
either engine's numerics (RNG draws, priority normalisation, CDF
evaluation) fails loudly instead of silently publishing different
curves. Scales are reduced; values are exact IEEE floats (JSON repr
round-trip), not tolerances.
"""

import pytest

from repro.experiments import fig2, fig3
from repro.experiments.runner import ExperimentScale

FIG2_KW = dict(cache_blocks=256, accesses=8000, seed=0)
#: sparse probe of the 101-point CDF grid: ends, quartiles, and some
#: interior structure
FIG2_PROBE = (0, 10, 25, 50, 75, 90, 100)


def _fig2_payload(engine):
    result = fig2.run(engine=engine, **FIG2_KW)
    payload = {"xs": [float(result.xs[i]) for i in FIG2_PROBE]}
    for n, (cdf, ks) in sorted(result.simulated.items()):
        payload[f"n{n}"] = {
            "cdf": [float(cdf[i]) for i in FIG2_PROBE],
            "ks": float(ks),
        }
    return payload


@pytest.mark.parametrize("engine", ["reference", "turbo"])
def test_fig2_cdf_golden(golden, engine):
    """Both engines must reproduce the same pinned Fig. 2 CDF points."""
    golden("fig2_cdf", _fig2_payload(engine))


def test_fig3_curves_golden(golden):
    scale = ExperimentScale(instructions_per_core=300, workloads=("canneal",))
    cells = fig3.run(scale=scale)
    payload = {}
    for cell in cells:
        d = cell.distribution
        payload[f"{cell.design}/{cell.workload}"] = {
            "candidates": cell.candidates,
            "evictions": len(d),
            "mean": d.mean(),
            "ks": d.ks_to_uniformity(cell.candidates),
        }
    assert payload, "fig3 tiny scale produced no cells"
    golden("fig3_curves", payload)
