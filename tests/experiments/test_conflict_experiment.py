"""Tests for the conflict-metric critique experiment."""

from repro.experiments import conflict


class TestConflictExperiment:
    def test_negative_conflicts_demonstrated(self):
        rows, _report = conflict.run()
        negative = [r for r in rows if r.conflict < 0]
        # Section IV's objection: the metric can go negative.
        assert negative
        assert all(r.trace == "anti-lru" for r in negative)

    def test_metric_is_policy_dependent(self):
        rows, _report = conflict.run()
        by_key = {}
        for r in rows:
            by_key[(r.design, r.policy, r.trace)] = r.conflict
        # Same design and trace, different policy -> different conflict
        # count (objection #1).
        lru = by_key[("SA-4", "lru", "conflict")]
        lfu = by_key[("SA-4", "lfu", "conflict")]
        assert lru != lfu

    def test_framework_ranks_by_candidates(self):
        _rows, report_lines = conflict.run()
        text = "\n".join(report_lines)
        # The associativity ranking puts Z4/52 first and plain SA-4 last.
        body = [line for line in report_lines if "n=" in line]
        assert "Z4/52" in body[0]
        assert "SA-4 " in body[-1] or body[-1].strip().startswith("SA-4")
        assert "effn" in text


class TestHashQualityExperiment:
    def test_quality_ordering(self):
        from repro.experiments import hashquality

        points = hashquality.run(accesses=30_000, way_counts=(2, 4))
        by_key = {(p.hash_kind, p.ways): p for p in points}
        # Bit selection collapses on strided traffic; real hashes track
        # uniformity (paper Section IV-C).
        assert by_key[("bitsel", 4)].ks > 0.5
        assert by_key[("h3", 4)].ks < 0.1
        assert by_key[("mix", 4)].ks < 0.1
        # More ways improve the match for hashed designs.
        assert (
            by_key[("h3", 4)].effective_candidates
            > by_key[("h3", 2)].effective_candidates
        )


class TestPressureExperiment:
    def test_early_stop_tradeoff(self):
        from repro.experiments import pressure
        from repro.experiments.runner import ExperimentScale

        points = pressure.run(
            workload="canneal",
            limits=(None, 4),
            scale=ExperimentScale(instructions_per_core=1500),
        )
        full, capped = points
        # Early stop always reduces tag traffic; misses rise (weakly).
        assert capped.tag_load_per_bank < full.tag_load_per_bank
        assert capped.l2_mpki >= full.l2_mpki - 1e-9
        assert capped.queueing_cycles <= full.queueing_cycles
