"""Tests for the Fig. 1 walkthrough and the buffering experiment."""

import pytest

from repro.experiments import buffering, fig1


class TestFig1:
    def test_matches_paper_structure(self):
        result = fig1.run(seed=4)
        assert result.candidates_per_level == {0: 3, 1: 6, 2: 12}
        assert result.total_candidates == 21
        assert result.walk_cycles == 12
        assert 0 <= result.victim_level <= 2
        assert result.relocations == result.victim_level
        assert result.timeline.hidden

    def test_deterministic_per_seed(self):
        a, b = fig1.run(seed=7), fig1.run(seed=7)
        assert a.victim_level == b.victim_level

    def test_rows_render(self):
        rows = fig1.run().rows()
        assert any("21" in r for r in rows)
        assert any("walk level" in r for r in rows)


class TestBuffering:
    def test_validation(self):
        with pytest.raises(ValueError):
            buffering.run(blocks=100)

    def test_paper_ordering(self):
        points = {p.design: p for p in buffering.run(blocks=256, trials=3)}
        # Candidates, not ways, determine buffering capacity.
        assert (
            points["SA-4h"].pinnable_mean
            < points["SK-4"].pinnable_mean
            < points["Z4/16"].pinnable_mean
            < points["Z4/52"].pinnable_mean
        )
        # The zcache makes most of its capacity usable.
        assert points["Z4/52"].fraction > 0.8
        # A 4-way SA cache overflows at a small fraction of capacity.
        assert points["SA-4h"].fraction < 0.5

    def test_rows_render(self):
        for p in buffering.run(blocks=128, trials=2):
            assert "pinnable" in p.row()
            assert 0.0 < p.fraction <= 1.0
