"""Unit tests for the ZTrace timeline analyzers (repro.obs.timeline)."""

import json

import pytest

from repro.obs import timeline as tl
from repro.obs.spans import Span, SpanTracker


def _span(name, span_id, parent_id, start, duration, process="main",
          thread="main"):
    return Span(
        name=name, span_id=span_id, parent_id=parent_id, trace_id=1,
        process=process, thread=thread, start=start, duration=duration,
    )


def _sweep_tree():
    """A stitched two-worker sweep: root, two jobs, worker children.

    Layout (seconds)::

        sweep   |---------------------------| 0..10
        job.a      |--------|                 1..5   (worker-1)
        job.b      |------------------|       1..8.5 (worker-2)
          b.replay   |---------------|        1.5..8 (worker-2)
    """
    return [
        _span("sweep", 1, None, 0.0, 10.0),
        _span("job.a", 2, 1, 1.0, 4.0, process="worker-1", thread="a"),
        _span("job.b", 3, 1, 1.0, 7.5, process="worker-2", thread="b"),
        _span("replay.b", 4, 3, 1.5, 6.5, process="worker-2", thread="b"),
    ]


class TestTreeStructure:
    def test_children_index_sorted_by_start(self):
        spans = _sweep_tree()
        index = tl.children_index(spans)
        assert [s.name for s in index[1]] == ["job.a", "job.b"]
        assert [s.name for s in index[3]] == ["replay.b"]

    def test_root_spans_ignores_unknown_parents(self):
        spans = _sweep_tree()
        orphan = _span("orphan", 9, 999, 0.0, 1.0)
        roots = tl.root_spans(spans + [orphan])
        assert {s.name for s in roots} == {"sweep", "orphan"}

    def test_coverage_is_the_clipped_child_union(self):
        spans = _sweep_tree()
        # children of sweep: [1, 5] U [1, 8.5] = 7.5s of a 10s root
        assert tl.coverage(spans, spans[0]) == pytest.approx(0.75)

    def test_coverage_of_zero_duration_root_is_full(self):
        root = _span("r", 1, None, 0.0, 0.0)
        assert tl.coverage([root], root) == 1.0


class TestCriticalPath:
    def test_attribution_partitions_the_root_duration(self):
        spans = _sweep_tree()
        steps = tl.critical_path(spans, spans[0])
        assert sum(s.attributed for s in steps) == pytest.approx(10.0)

    def test_straggler_chain_is_descended(self):
        spans = _sweep_tree()
        steps = tl.critical_path(spans, spans[0])
        names = [s.span.name for s in steps]
        # job.b finished last, replay.b determined its end; job.a is
        # hidden under job.b's interval and never appears.
        assert "job.b" in names
        assert "replay.b" in names
        assert "job.a" not in names

    def test_steps_are_chronological(self):
        spans = _sweep_tree()
        steps = tl.critical_path(spans, spans[0])
        # each step ends where the next begins; total spans the root
        assert steps[0].span.name == "sweep"  # 0..1 leading segment

    def test_single_span_tree(self):
        root = _span("only", 1, None, 0.0, 2.0)
        steps = tl.critical_path([root], root)
        assert len(steps) == 1
        assert steps[0].attributed == pytest.approx(2.0)

    def test_render_lists_every_step(self):
        spans = _sweep_tree()
        steps = tl.critical_path(spans, spans[0])
        lines = tl.render_critical_path(steps)
        assert len(lines) == len(steps) + 1
        assert "critical path" in lines[0]


class TestStats:
    def test_phase_name_collapses_batch_suffixes(self):
        assert tl.phase_name("fig2.n4.batch17") == "fig2.n4.batch"
        assert tl.phase_name("fig2.n4.batch") == "fig2.n4.batch"
        assert tl.phase_name("job.a") == "job.a"

    def test_phase_stats_percentiles(self):
        spans = [
            _span("job", i, None, 0.0, float(i)) for i in range(1, 11)
        ]
        stats = tl.phase_stats(spans)["job"]
        assert stats["count"] == 10
        assert stats["max"] == 10.0
        # nearest rank: round(0.5 * 9) banker-rounds to index 4
        assert stats["p50"] == 5.0
        assert stats["total"] == 55.0

    def test_worker_utilization_unions_nested_intervals(self):
        spans = _sweep_tree()
        util = tl.worker_utilization(spans, spans[0])
        # worker-2: job.b [1, 8.5] already covers replay.b — no double count
        assert util["worker-2"]["busy"] == pytest.approx(7.5)
        assert util["worker-2"]["utilization"] == pytest.approx(0.75)
        assert util["worker-1"]["busy"] == pytest.approx(4.0)
        assert "main" not in util  # the root span itself is excluded


class TestChromeTrace:
    def test_export_schema_is_valid(self):
        payload = tl.to_chrome_trace(_sweep_tree())
        assert tl.validate_chrome_trace(payload) == []

    def test_main_is_pinned_to_pid_1(self):
        payload = tl.to_chrome_trace(_sweep_tree())
        names = {
            ev["args"]["name"]: ev["pid"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names["main"] == 1
        assert len(set(names.values())) == 3  # one pid per process

    def test_threads_get_distinct_tids(self):
        payload = tl.to_chrome_trace(_sweep_tree())
        x = [ev for ev in payload["traceEvents"] if ev["ph"] == "X"]
        tracks = {(ev["pid"], ev["tid"]) for ev in x}
        assert len(tracks) == 3  # main/main, worker-1/a, worker-2/b

    def test_timestamps_are_microseconds(self):
        payload = tl.to_chrome_trace([_span("s", 1, None, 0.5, 1.5)])
        (ev,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert ev["ts"] == pytest.approx(5e5)
        assert ev["dur"] == pytest.approx(1.5e6)

    def test_write_round_trips_through_json(self, tmp_path):
        out = tl.write_chrome_trace(tmp_path / "t.json", _sweep_tree())
        with open(out, encoding="utf-8") as f:
            payload = json.load(f)
        assert tl.validate_chrome_trace(payload) == []

    def test_validator_rejects_malformed_payloads(self):
        assert tl.validate_chrome_trace([]) != []
        assert tl.validate_chrome_trace({}) != []
        bad_event = {"ph": "X", "name": "x", "pid": 2, "tid": 1,
                     "ts": -1.0, "dur": 0.0}
        errors = tl.validate_chrome_trace({"traceEvents": [bad_event]})
        assert any("ts" in e for e in errors)
        assert any("process_name" in e for e in errors)


class TestAnalyze:
    def test_report_from_a_live_tracker(self):
        tracker = SpanTracker(seed=0)
        with tracker.span("sweep"):
            with tracker.span("capture"):
                pass
            with tracker.span("job.a"):
                pass
        report = tl.analyze(tracker.spans())
        assert report.root.name == "sweep"
        assert 0.0 <= report.coverage <= 1.0
        total = sum(s.attributed for s in report.steps)
        assert total == pytest.approx(report.root.duration, rel=1e-6)
        lines = tl.render_report(report)
        assert any("root span 'sweep'" in line for line in lines)

    def test_analyze_requires_spans(self):
        with pytest.raises(ValueError):
            tl.analyze([])

    def test_explicit_root_wins(self):
        spans = _sweep_tree()
        report = tl.analyze(spans, root=spans[2])
        assert report.root.name == "job.b"
