"""Integration tests for ``zcache-repro stats`` and ``zcache-repro trace``."""

import json

from repro.cli import main


class TestStats:
    def test_fig2_text_snapshot(self, capsys):
        code = main([
            "stats", "fig2", "--blocks", "128", "--instructions", "800",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # Hierarchical metric names for every candidate count, plus the
        # wall-time attribution section.
        for n in (4, 8, 16, 64):
            assert f"n{n}.misses" in out
        assert "wall-time attribution:" in out
        assert "fig2.n4" in out

    def test_fig2_json_snapshot(self, capsys):
        code = main([
            "stats", "fig2", "--blocks", "128", "--instructions", "800",
            "--format", "json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "fig2"
        assert payload["metrics"]["n4.accesses"] == 800
        assert "fig2" in payload["phases"]

    def test_unknown_experiment_rejected(self, capsys):
        try:
            code = main(["stats", "fig9"])
        except SystemExit as exc:  # argparse exits on bad choices
            code = exc.code
        assert code == 2


class TestTrace:
    def test_fig2_trace_reconstruction_passes(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        code = main([
            "trace", "fig2", "--blocks", "128", "--instructions", "800",
            "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert "reconstruction (trace CDF vs in-process):" in out
        assert "FAIL" not in out
        assert out.count("OK") == 4

    def test_trace_file_is_valid_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        assert main([
            "trace", "fig2", "--blocks", "128", "--instructions", "400",
            "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        kinds = set()
        with open(out_path, encoding="utf-8") as f:
            for line in f:
                kinds.add(json.loads(line)["ev"])
        assert {"access", "miss", "walk", "eviction"} <= kinds

    def test_progress_log_heartbeat(self, tmp_path, capsys):
        log = tmp_path / "hb.log"
        assert main([
            "stats", "sweep", "--workload", "canneal",
            "--instructions", "300", "--progress-log", str(log),
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "capture" in payload["phases"]
        text = log.read_text()
        assert "captured L2 stream" in text
        assert "(2/2)" in text
