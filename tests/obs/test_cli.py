"""Integration tests for ``zcache-repro stats`` and ``zcache-repro trace``."""

import json

from repro.cli import main


class TestStats:
    def test_fig2_text_snapshot(self, capsys):
        code = main([
            "stats", "fig2", "--blocks", "128", "--instructions", "800",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # Hierarchical metric names for every candidate count, plus the
        # wall-time attribution section.
        for n in (4, 8, 16, 64):
            assert f"n{n}.misses" in out
        assert "wall-time attribution:" in out
        assert "fig2.n4" in out

    def test_fig2_json_snapshot(self, capsys):
        code = main([
            "stats", "fig2", "--blocks", "128", "--instructions", "800",
            "--format", "json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "fig2"
        assert payload["metrics"]["n4.accesses"] == 800
        assert "fig2" in payload["phases"]

    def test_unknown_experiment_rejected(self, capsys):
        try:
            code = main(["stats", "fig9"])
        except SystemExit as exc:  # argparse exits on bad choices
            code = exc.code
        assert code == 2


class TestTrace:
    def test_fig2_trace_reconstruction_passes(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        code = main([
            "trace", "fig2", "--blocks", "128", "--instructions", "800",
            "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert "reconstruction (trace CDF vs in-process):" in out
        assert "FAIL" not in out
        assert out.count("OK") == 4

    def test_trace_file_is_valid_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        assert main([
            "trace", "fig2", "--blocks", "128", "--instructions", "400",
            "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        kinds = set()
        with open(out_path, encoding="utf-8") as f:
            for line in f:
                kinds.add(json.loads(line)["ev"])
        assert {"access", "miss", "walk", "eviction"} <= kinds

    def test_gzip_trace_read_transparently(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl.gz"
        code = main([
            "trace", "fig2", "--blocks", "128", "--instructions", "400",
            "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        with open(out_path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"  # really gzip on disk
        # the offline reconstruction re-read the compressed trace
        assert "reconstruction (trace CDF vs in-process):" in out
        assert "FAIL" not in out

    def test_progress_log_heartbeat(self, tmp_path, capsys):
        log = tmp_path / "hb.log"
        assert main([
            "stats", "sweep", "--workload", "canneal",
            "--instructions", "300", "--progress-log", str(log),
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "capture" in payload["phases"]
        text = log.read_text()
        assert "captured L2 stream" in text
        assert "(2/2)" in text


class TestTimeline:
    def test_fig2_timeline_checks_pass(self, tmp_path, capsys):
        out_path = tmp_path / "timeline.json"
        code = main([
            "timeline", "fig2", "--blocks", "64", "--instructions", "400",
            "--out", str(out_path), "--critical-path", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "CHECK FAIL" not in out
        assert "critical path" in out
        assert "root span 'fig2'" in out
        payload = json.loads(out_path.read_text())
        assert any(
            ev.get("name") == "fig2.n4" for ev in payload["traceEvents"]
        )

    def test_parallel_sweep_timeline_stitches_workers(self, tmp_path, capsys):
        # No --check here: the >=90% coverage bar is timing-sensitive
        # when worker spawn competes with the rest of the suite for the
        # machine. CI smokes the checked variant in a dedicated step.
        out_path = tmp_path / "timeline.json"
        code = main([
            "timeline", "sweep", "--jobs", "2", "--workload", "gcc",
            "--instructions", "400", "--out", str(out_path),
            "--critical-path",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        payload = json.loads(out_path.read_text())
        processes = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        workers = {p for p in processes if p.startswith("worker-")}
        assert "main" in processes
        assert workers  # span trees crossed the process boundary
        assert "worker utilization:" in out
