"""Integration: Fig. 2's eviction CDF reconstructs exactly from a trace.

This is the acceptance contract of the tracing layer: running the
Fig. 2 experiment with a JSONL sink must yield a file from which the
eviction-priority CDF can be rebuilt offline and match the in-process
result (satellite of the ZScope issue).
"""

import numpy as np

from repro.assoc import AssociativityDistribution
from repro.experiments import fig2
from repro.obs import (
    JsonlSink,
    ObsContext,
    TraceBus,
    collect_eviction_priorities,
    count_by_kind,
    read_jsonl,
)

BLOCKS = 128
ACCESSES = 1_500


class TestFig2TraceReconstruction:
    def _run(self, tmp_path):
        path = tmp_path / "fig2.jsonl"
        obs = ObsContext(trace=TraceBus(JsonlSink(path)))
        result = fig2.run(
            cache_blocks=BLOCKS, accesses=ACCESSES, seed=3, obs=obs
        )
        obs.close()
        return result, list(read_jsonl(path))

    def test_offline_cdf_matches_in_process(self, tmp_path):
        result, events = self._run(tmp_path)
        priorities = collect_eviction_priorities(events)
        for n in fig2.CANDIDATE_COUNTS:
            samples = priorities[f"n{n}"]
            assert samples, f"n={n} traced no evictions"
            rebuilt = AssociativityDistribution(samples).cdf(result.xs)
            np.testing.assert_allclose(
                rebuilt, result.simulated[n][0], atol=1e-12,
                err_msg=f"offline CDF diverged for n={n}",
            )

    def test_trace_is_internally_consistent(self, tmp_path):
        result, events = self._run(tmp_path)
        counts = count_by_kind(events)
        # One access record per simulated access, one walk per miss.
        assert counts["access"] == ACCESSES * len(fig2.CANDIDATE_COUNTS)
        assert counts["walk"] == counts["miss"]
        # seq is strictly increasing across the whole bus.
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_metrics_agree_with_trace(self, tmp_path):
        path = tmp_path / "fig2.jsonl"
        obs = ObsContext(trace=TraceBus(JsonlSink(path)))
        fig2.run(cache_blocks=BLOCKS, accesses=ACCESSES, seed=3, obs=obs)
        obs.close()
        counts = count_by_kind(read_jsonl(path))
        assert obs.metrics.sum_counters("misses") == counts["miss"]
        assert obs.metrics.sum_counters("evictions") == counts["eviction"]
