"""Tests for the ZScope observability layer (repro.obs)."""
