"""Unit tests for the ZScope metrics registry and stats facade."""

import json

import pytest

from repro.obs import MetricsRegistry, RegistryStats, sanitize_component


class TestCounterAndGauge:
    def test_counter_increments(self):
        c = MetricsRegistry().counter("hits")
        c.inc()
        c.inc(3)
        c.value += 1
        assert c.value == 5
        assert c.snapshot_value() == 5

    def test_gauge_holds_last_value(self):
        g = MetricsRegistry().gauge("ways")
        g.set(4)
        g.set(16)
        assert g.snapshot_value() == 16


class TestHistograms:
    def test_fixed_buckets_and_exact_mean(self):
        h = MetricsRegistry().histogram("lat", bounds=[1.0, 2.0, 4.0])
        for x in (0.5, 1.5, 3.0, 100.0):
            h.observe(x)
        assert h.counts == [1, 1, 1, 1]  # last is the overflow bucket
        assert h.mean == pytest.approx((0.5 + 1.5 + 3.0 + 100.0) / 4)
        assert h.min == 0.5 and h.max == 100.0

    def test_cdf_excludes_overflow(self):
        h = MetricsRegistry().histogram("lat", bounds=[1.0, 2.0])
        for x in (0.5, 1.5, 9.0):
            h.observe(x)
        assert h.cdf() == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3))]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=[2.0, 1.0])

    def test_int_histogram_grows_and_merges(self):
        h = MetricsRegistry().int_histogram("levels")
        h.observe(0)
        h.observe(2)
        h.observe(2)
        assert h.counts == [1, 0, 2]
        h.add_counts([0, 5])
        assert h.counts == [1, 5, 2]
        assert h.count == 8

    def test_int_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().int_histogram("levels").observe(-1)

    def test_reservoir_is_bounded_and_deterministic(self):
        r1 = MetricsRegistry().reservoir("e", capacity=16, seed=7)
        r2 = MetricsRegistry().reservoir("e", capacity=16, seed=7)
        for i in range(1000):
            r1.observe(i / 1000)
            r2.observe(i / 1000)
        assert len(r1.samples) == 16
        assert r1.count == 1000
        assert r1.samples == r2.samples  # seeded: no determinism leak
        assert 0.0 <= r1.quantile(0.5) <= 1.0


class TestRegistry:
    def test_scoped_views_share_one_store(self):
        root = MetricsRegistry()
        bank = root.scoped("l2").scoped("bank3")
        c = bank.counter("walk.tag_reads")
        assert c.name == "l2.bank3.walk.tag_reads"
        assert root.get("l2.bank3.walk.tag_reads") is c

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(TypeError):
            reg.gauge("hits")

    def test_names_respect_scope(self):
        root = MetricsRegistry()
        root.scoped("a").counter("x")
        root.scoped("ab").counter("x")
        assert root.scoped("a").names() == ["a.x"]
        assert set(root.names()) == {"a.x", "ab.x"}

    def test_sum_counters_aggregates_suffix(self):
        root = MetricsRegistry()
        for b in range(3):
            root.scoped(f"l2.bank{b}").counter("hits").inc(b + 1)
        root.scoped("l2").counter("hits_total")  # must not match ".hits"
        assert root.scoped("l2").sum_counters("hits") == 6

    def test_snapshot_and_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.gauge("ways").set(4)
        snap = json.loads(reg.to_json())
        assert snap == {"hits": 2, "ways": 4}

    def test_render_text_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.int_histogram("levels").observe(1)
        text = reg.render_text()
        assert "hits" in text and "levels" in text

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_sanitize_component(self):
        assert sanitize_component("Z4/52") == "Z4_52"
        assert sanitize_component("SA-4h") == "SA-4h"
        assert "." not in sanitize_component("a.b c")


class _DemoStats(RegistryStats):
    """Facade fixture with two counters."""

    _COUNTER_FIELDS = ("hits", "misses")


class TestRegistryStats:
    def test_attribute_reads_and_writes_hit_the_registry(self):
        reg = MetricsRegistry().scoped("l1")
        stats = _DemoStats(reg)
        stats.hits += 2
        stats.misses = 5
        assert reg.counter("hits").value == 2
        assert reg.counter("misses").value == 5
        assert stats.as_dict() == {"hits": 2, "misses": 5}

    def test_unknown_counter_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            _ = _DemoStats().bogus

    def test_merge_counters(self):
        a, b = _DemoStats(), _DemoStats()
        a.hits = 1
        b.hits = 10
        b.misses = 3
        a.merge_counters(b)
        assert a.as_dict() == {"hits": 11, "misses": 3}

    def test_hot_path_counter_objects_alias_the_facade(self):
        stats = _DemoStats()
        c = stats.counters()["hits"]
        c.value += 7
        assert stats.hits == 7


class TestMergeSnapshot:
    def test_counters_add(self):
        worker = MetricsRegistry()
        worker.counter("l2.hits").value = 7
        parent = MetricsRegistry()
        parent.counter("l2.hits").value = 3
        parent.merge_snapshot(worker.snapshot())
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("l2.hits").value == 17

    def test_names_reroot_under_view_prefix(self):
        worker = MetricsRegistry()
        worker.counter("hits").value = 2
        parent = MetricsRegistry()
        parent.scoped("job0").merge_snapshot(worker.snapshot())
        assert parent.counter("job0.hits").value == 2

    def test_gauge_is_set_not_added(self):
        parent = MetricsRegistry()
        parent.gauge("occupancy").value = 10
        parent.merge_snapshot({"occupancy": 4})
        assert parent.gauge("occupancy").value == 4

    def test_histograms_merge_bucketwise(self):
        bounds = [1.0, 10.0]
        worker = MetricsRegistry()
        h = worker.histogram("lat", bounds)
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        parent = MetricsRegistry()
        parent.histogram("lat", bounds).observe(2.0)
        parent.merge_snapshot(worker.snapshot())
        merged = parent.histogram("lat", bounds)
        assert merged.count == 4
        assert merged.total == pytest.approx(57.5)
        assert merged.min == 0.5
        assert merged.max == 50.0

    def test_histogram_bounds_mismatch_rejected(self):
        worker = MetricsRegistry()
        worker.histogram("lat", [1.0, 10.0]).observe(2.0)
        parent = MetricsRegistry()
        parent.histogram("lat", [2.0, 20.0])
        with pytest.raises(ValueError, match="bounds"):
            parent.merge_snapshot(worker.snapshot())

    def test_int_histograms_merge(self):
        worker = MetricsRegistry()
        ih = worker.int_histogram("walks")
        ih.observe(2)
        ih.observe(2)
        parent = MetricsRegistry()
        parent.int_histogram("walks").observe(1)
        parent.merge_snapshot(worker.snapshot())
        assert parent.int_histogram("walks").counts[1] == 1
        assert parent.int_histogram("walks").counts[2] == 2

    def test_reservoir_merge_adopts_worker_samples(self):
        worker = MetricsRegistry()
        worker.reservoir("lat").observe(5.0)
        parent = MetricsRegistry()
        parent.reservoir("lat").observe(1.0)
        parent.merge_snapshot(worker.snapshot())
        res = parent.reservoir("lat")
        assert res.count == 2
        assert res.quantile(1.0) == 5.0
        assert sorted(res.samples) == [1.0, 5.0]

    def test_reservoir_merge_without_samples_degrades_to_count(self):
        parent = MetricsRegistry()
        parent.reservoir("lat").observe(1.0)
        # a legacy snapshot (count-only, no retained samples)
        parent.merge_snapshot(
            {"lat": {"count": 9, "retained": 0, "p50": 0, "p90": 0, "p99": 0}}
        )
        res = parent.reservoir("lat")
        assert res.count == 10
        assert res.samples == [1.0]

    def test_reservoir_two_worker_merge_tracks_serial_quantiles(self):
        serial = MetricsRegistry().reservoir("lat", capacity=256, seed=3)
        workers = [
            MetricsRegistry().reservoir("lat", capacity=256, seed=3)
            for _ in range(2)
        ]
        values = [((i * 37) % 1000) / 1000 for i in range(2000)]
        for i, x in enumerate(values):
            serial.observe(x)
            workers[i % 2].observe(x)
        parent = MetricsRegistry()
        parent.reservoir("lat", capacity=256, seed=3)
        for w in workers:
            parent.merge_snapshot({"lat": w.snapshot_value()})
        merged = parent.reservoir("lat")
        assert merged.count == serial.count == 2000
        assert len(merged.samples) == merged.capacity
        # both reservoirs estimate the same (uniform-ish) stream
        for q in (0.25, 0.5, 0.9):
            assert abs(merged.quantile(q) - serial.quantile(q)) < 0.1

    def test_reservoir_merge_is_order_independent(self):
        snaps = []
        for base in (0, 1):
            reg = MetricsRegistry()
            res = reg.reservoir("lat", capacity=32)
            for i in range(500):
                res.observe(float(2 * i + base))
            snaps.append(reg.snapshot())
        a, b = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            a.merge_snapshot(s)
        for s in reversed(snaps):
            b.merge_snapshot(s)
        assert a.snapshot() == b.snapshot()

    def test_merge_is_order_independent(self):
        snaps = []
        for base in (1, 100):
            reg = MetricsRegistry()
            reg.counter("c").value = base
            reg.int_histogram("h").observe(base % 5)
            snaps.append(reg.snapshot())
        a, b = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            a.merge_snapshot(s)
        for s in reversed(snaps):
            b.merge_snapshot(s)
        assert a.snapshot() == b.snapshot()

    def test_unmergeable_entry_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ValueError):
            parent.merge_snapshot({"weird": {"foo": 1}})
        with pytest.raises(ValueError):
            parent.merge_snapshot({"flag": True})
