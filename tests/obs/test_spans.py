"""Unit tests for ZTrace span tracking (repro.obs.spans)."""

import json

import pytest

from repro.obs import NULL_SPANS, Span, SpanContext, SpanTracker, read_span_export
from repro.obs.spans import derive_span_id, derive_trace_id


class TestDeterministicIds:
    def test_trace_id_is_a_pure_function_of_the_seed(self):
        assert derive_trace_id(7) == derive_trace_id(7)
        assert derive_trace_id(7) != derive_trace_id(8)
        assert SpanTracker(seed=7).trace_id == derive_trace_id(7)

    def test_span_ids_follow_the_seeded_chain(self):
        tracker = SpanTracker(seed=3)
        with tracker.span("a"):
            with tracker.span("b"):
                pass
        a, b = tracker.spans()[1], tracker.spans()[0]
        assert a.span_id == derive_span_id(tracker.trace_id, 1)
        assert b.span_id == derive_span_id(tracker.trace_id, 2)

    def test_two_trackers_with_one_seed_agree_on_every_id(self):
        ids = []
        for _ in range(2):
            tracker = SpanTracker(seed=11)
            with tracker.span("x"):
                with tracker.span("y"):
                    pass
            ids.append([s.span_id for s in tracker.spans()])
        assert ids[0] == ids[1]


class TestSpanLifecycle:
    def test_nesting_sets_parent_ids(self):
        tracker = SpanTracker(seed=0)
        with tracker.span("outer") as outer:
            with tracker.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_yielded_span_takes_attrs(self):
        tracker = SpanTracker(seed=0)
        with tracker.span("job", key="k") as span:
            span.set_attr(status="ok")
        (done,) = tracker.spans()
        assert done.attrs == {"key": "k", "status": "ok"}

    def test_set_attr_targets_the_innermost_open_span(self):
        tracker = SpanTracker(seed=0)
        with tracker.span("outer"):
            with tracker.span("inner"):
                tracker.set_attr(hit=True)
        inner = next(s for s in tracker.spans() if s.name == "inner")
        assert inner.attrs == {"hit": True}

    def test_span_closes_on_exception(self):
        tracker = SpanTracker(seed=0)
        with pytest.raises(RuntimeError):
            with tracker.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracker.spans()
        assert span.duration >= 0.0

    def test_close_finishes_dangling_spans(self):
        tracker = SpanTracker(seed=0)
        gen = tracker.span("leaked")
        gen.__enter__()
        tracker.close()
        (span,) = tracker.spans()
        assert span.name == "leaked"
        assert span.duration >= 0.0

    def test_record_span_registers_a_measured_interval(self):
        tracker = SpanTracker(seed=0)
        span = tracker.record_span("job", start=1.0, end=3.5, status="parallel")
        assert span.start == 1.0
        assert span.duration == 2.5
        assert tracker.spans() == [span]

    def test_durations_are_non_negative_and_ordered(self):
        tracker = SpanTracker(seed=0)
        with tracker.span("outer"):
            with tracker.span("inner"):
                pass
        inner, outer = tracker.spans()
        assert 0.0 <= inner.duration <= outer.duration
        assert outer.start <= inner.start
        assert inner.end <= outer.end


class TestNullTracker:
    def test_disabled_tracker_records_nothing(self):
        with NULL_SPANS.span("x") as span:
            assert span is None
        assert NULL_SPANS.spans() == []
        assert NULL_SPANS.record_span("x", 0.0, 1.0) is None
        assert NULL_SPANS.adopt({"origin": 0.0, "spans": []}) == 0

    def test_null_spans_is_shared_and_disabled(self):
        assert NULL_SPANS.enabled is False


class TestSerialization:
    def test_span_dict_round_trip(self):
        span = Span(
            name="job", span_id=5, parent_id=2, trace_id=9,
            process="worker-1", thread="gcc", start=0.25, duration=0.5,
            attrs={"key": "k"},
        )
        assert Span.from_dict(json.loads(json.dumps(span.to_dict()))) == span

    def test_context_dict_round_trip(self):
        ctx = SpanContext(
            seed=42, parent_span_id=7, process="worker", thread="t0",
            sink_path="/tmp/x.jsonl",
        )
        assert SpanContext.from_dict(ctx.to_dict()) == ctx


class TestCrossProcessStitching:
    def test_sink_round_trip_preserves_header_and_spans(self, tmp_path):
        sink_path = tmp_path / "w.spans.jsonl"
        ctx = SpanContext(seed=9, parent_span_id=123, sink_path=str(sink_path))
        worker = SpanTracker.from_context(ctx, process="worker-7")
        with worker.span("replay"):
            with worker.span("replay.stream"):
                pass
        worker.close()

        export = read_span_export(sink_path)
        assert export["process"] == "worker-7"
        assert export["trace_id"] == derive_trace_id(9)
        assert export["origin"] == worker.origin
        assert [s.name for s in export["spans"]] == ["replay.stream", "replay"]
        root = export["spans"][1]
        assert root.parent_id == 123

    def test_adopt_rebases_onto_the_parent_clock(self):
        parent = SpanTracker(seed=0)
        worker = Span(
            name="replay", span_id=1, parent_id=None, trace_id=2,
            process="worker-1", thread="main", start=0.5, duration=1.0,
        )
        offset = 10.0
        parent.adopt(
            {"origin": parent.origin + offset, "spans": [worker]}
        )
        (adopted,) = parent.spans()
        assert adopted.start == pytest.approx(0.5 + offset)
        assert adopted.duration == 1.0
        # Orphans are re-parented under the tracker's root_parent_id
        assert adopted.parent_id is None

    def test_adopt_clamps_into_the_window(self):
        parent = SpanTracker(seed=0)
        worker = Span(
            name="replay", span_id=1, parent_id=None, trace_id=2,
            process="worker-1", thread="main", start=-1.0, duration=100.0,
        )
        parent.adopt(
            {"origin": parent.origin, "spans": [worker]}, window=(2.0, 5.0)
        )
        (adopted,) = parent.spans()
        assert adopted.start == 2.0
        assert adopted.end == 5.0

    def test_adopt_reparents_orphans_under_root_parent_id(self):
        parent = SpanTracker(seed=0, root_parent_id=77)
        worker = Span(
            name="replay", span_id=1, parent_id=None, trace_id=2,
            process="worker-1", thread="main", start=0.0, duration=1.0,
        )
        parent.adopt({"origin": parent.origin, "spans": [worker]})
        assert parent.spans()[0].parent_id == 77


class TestTurboBatches:
    def test_batch_hook_rolls_spans(self):
        from repro.core import Cache, RandomCandidatesArray
        from repro.replacement import LRU

        tracker = SpanTracker(seed=0)
        cache = Cache(
            RandomCandidatesArray(64, 4, seed=1), LRU(), engine="turbo"
        )
        if cache.engine != "turbo":
            pytest.skip("turbo engine unavailable")
        with tracker.span("fig2"):
            with tracker.turbo_batches(cache._turbo, "fig2", every=16):
                for address in range(64):
                    cache.access(address)
        batches = [s for s in tracker.spans() if ".batch" in s.name]
        assert len(batches) >= 64 // 16
        fig2 = next(s for s in tracker.spans() if s.name == "fig2")
        assert all(b.parent_id == fig2.span_id for b in batches)

    def test_none_core_is_a_noop(self):
        tracker = SpanTracker(seed=0)
        with tracker.turbo_batches(None, "x"):
            pass
        assert tracker.spans() == []
