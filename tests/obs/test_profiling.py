"""Unit tests for the ZScope phase timer and heartbeat."""

import io

from repro.obs import (
    NULL_HEARTBEAT,
    NULL_PHASE_TIMER,
    PROGRESS_LOG_ENV,
    Heartbeat,
    PhaseTimer,
)


class TestPhaseTimer:
    def test_phases_accumulate_and_count(self):
        timer = PhaseTimer()
        with timer.phase("replay"):
            pass
        with timer.phase("replay"):
            pass
        timer.add("capture", 1.5)
        assert timer.seconds("replay") >= 0.0
        assert timer.seconds("capture") == 1.5
        assert set(timer.report()) == {"replay", "capture"}

    def test_report_sorted_by_time_descending(self):
        timer = PhaseTimer()
        timer.add("small", 0.1)
        timer.add("big", 9.0)
        assert list(timer.report()) == ["big", "small"]

    def test_render_includes_shares_and_total(self):
        timer = PhaseTimer()
        timer.add("capture", 3.0)
        timer.add("replay", 1.0)
        text = timer.render()
        assert "capture" in text and "75.0%" in text and "total" in text

    def test_render_empty(self):
        assert PhaseTimer().render() == "(no phases recorded)"

    def test_disabled_timer_records_nothing(self):
        with NULL_PHASE_TIMER.phase("x"):
            pass
        assert NULL_PHASE_TIMER.report() == {}

    def test_unknown_phase_reads_zero(self):
        assert PhaseTimer().seconds("never") == 0.0


class TestHeartbeat:
    def test_disabled_by_default(self):
        hb = Heartbeat()
        hb.beat("ignored")
        assert hb.enabled is False
        assert hb.beats == 0
        assert NULL_HEARTBEAT.enabled is False

    def test_beats_append_to_one_file(self, tmp_path):
        log = tmp_path / "sweep" / "progress.log"
        hb = Heartbeat(path=log)
        hb.beat("captured stream")
        hb.beat("replayed Z4/16", done=2, total=12)
        lines = log.read_text().splitlines()
        assert len(lines) == 2
        assert "captured stream" in lines[0]
        assert lines[1].endswith("replayed Z4/16 (2/12)")

    def test_stream_output(self):
        buf = io.StringIO()
        Heartbeat(stream=buf).beat("alive")
        assert "alive" in buf.getvalue()

    def test_min_interval_rate_limits(self):
        buf = io.StringIO()
        hb = Heartbeat(stream=buf, min_interval=3600.0)
        hb.beat("first")
        hb.beat("suppressed")
        assert hb.beats == 1
        assert "suppressed" not in buf.getvalue()

    def test_from_env_disabled_without_variable(self, monkeypatch):
        monkeypatch.delenv(PROGRESS_LOG_ENV, raising=False)
        assert Heartbeat.from_env().enabled is False

    def test_from_env_uses_configured_path(self, tmp_path, monkeypatch):
        log = tmp_path / "hb.log"
        monkeypatch.setenv(PROGRESS_LOG_ENV, str(log))
        hb = Heartbeat.from_env()
        hb.beat("hello")
        assert "hello" in log.read_text()

    def test_construction_creates_missing_parents(self, tmp_path):
        # Fail fast on an unwritable location: the parent chain is
        # created when the heartbeat is built, not on the first beat
        # hours into a sweep (mirroring the JSONL sink's constructor).
        log = tmp_path / "deep" / "nested" / "run" / "progress.log"
        assert not log.parent.exists()
        Heartbeat(path=log)
        assert log.parent.is_dir()

    def test_from_env_creates_missing_parents(self, tmp_path, monkeypatch):
        log = tmp_path / "not" / "yet" / "there" / "hb.log"
        monkeypatch.setenv(PROGRESS_LOG_ENV, str(log))
        hb = Heartbeat.from_env()
        assert log.parent.is_dir()
        hb.beat("alive", done=1, total=2)
        assert "alive (1/2)" in log.read_text()
