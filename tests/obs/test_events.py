"""Unit tests for the ZScope trace bus, events and sinks."""

import pytest

from repro.obs import (
    EvictionEvent,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    WalkEvent,
    collect_eviction_priorities,
    count_by_kind,
    event_from_dict,
    event_to_dict,
    read_jsonl,
)
from repro.obs.events import JsonlWriter, segment_path


def _emit_sample(bus):
    """Drive one of each event kind through ``bus``."""
    bus.access("l1", 0x10, write=False, hit=True)
    bus.miss("l1", 0x20, write=True)
    bus.walk("l1", 0x20, tag_reads=16, candidates=16, truncated=False,
             level_counts=(4, 12))
    bus.relocation("l1", 0x30, src=(0, 5), dst=(1, 9), level=1)
    bus.eviction("l1", 0x40, priority=0.75, level=1, dirty=True)


class TestEventsRoundTrip:
    def test_dict_round_trip_preserves_every_field(self):
        bus = TraceBus(RingBufferSink())
        _emit_sample(bus)
        for event in bus.sink.events():
            clone = event_from_dict(event_to_dict(event))
            assert clone == event
            assert type(clone) is type(event)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"ev": "martian", "seq": 1})

    def test_level_counts_restored_as_tuple(self):
        e = WalkEvent(1, "c", 0, 4, 4, False, (1, 3))
        assert event_from_dict(event_to_dict(e)).level_counts == (1, 3)


class TestBus:
    def test_seq_is_bus_monotonic_across_kinds(self):
        bus = TraceBus(RingBufferSink())
        _emit_sample(bus)
        assert [e.seq for e in bus.sink.events()] == [1, 2, 3, 4, 5]

    def test_default_bus_is_disabled(self):
        bus = TraceBus()
        assert isinstance(bus.sink, NullSink)
        assert bus.enabled is False
        _emit_sample(bus)  # must be a harmless no-op
        assert bus.seq == 5

    def test_ring_buffer_keeps_newest(self):
        sink = RingBufferSink(capacity=3)
        bus = TraceBus(sink)
        for addr in range(5):
            bus.miss("l1", addr, write=False)
        assert sink.written == 5
        assert [e.address for e in sink.events()] == [2, 3, 4]

    def test_ring_buffer_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonl:
    def test_write_close_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = TraceBus(JsonlSink(path))
        _emit_sample(bus)
        bus.close()
        events = list(read_jsonl(path))
        assert len(events) == 5
        assert count_by_kind(events) == {
            "access": 1, "miss": 1, "walk": 1, "relocation": 1, "eviction": 1,
        }

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()


class TestCompressionAndRotation:
    def test_gz_suffix_compresses_transparently(self, tmp_path):
        import gzip

        path = tmp_path / "trace.jsonl.gz"
        bus = TraceBus(JsonlSink(path))
        _emit_sample(bus)
        bus.close()
        with open(path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"  # gzip magic
        with gzip.open(path, "rt", encoding="utf-8") as f:
            assert len(f.read().splitlines()) == 5
        events = list(read_jsonl(path))
        assert count_by_kind(events) == {
            "access": 1, "miss": 1, "walk": 1, "relocation": 1, "eviction": 1,
        }

    def test_segment_path_inserts_index_before_extensions(self):
        assert str(segment_path("a/trace.jsonl", 0)).endswith("a/trace.jsonl")
        assert segment_path("trace.jsonl", 2).name == "trace.2.jsonl"
        assert segment_path("trace.jsonl.gz", 1).name == "trace.1.jsonl.gz"
        assert segment_path("trace", 3).name == "trace.3"

    def test_rotation_splits_and_reads_back_in_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=200)
        bus = TraceBus(sink)
        for addr in range(50):
            bus.miss("l1", addr, write=False)
        bus.close()
        assert len(sink.paths) > 1
        assert all(p.exists() for p in sink.paths)
        assert sink.paths[1].name == "t.1.jsonl"
        events = list(read_jsonl(path))
        assert [e.address for e in events] == list(range(50))
        assert sink.written == 50

    def test_rotated_gz_series_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        sink = JsonlSink(path, max_bytes=200)
        bus = TraceBus(sink)
        for addr in range(40):
            bus.miss("l1", addr, write=False)
        bus.close()
        assert len(sink.paths) > 1
        assert sink.paths[1].name == "t.1.jsonl.gz"
        assert [e.address for e in read_jsonl(path)] == list(range(40))

    def test_rotation_threshold_is_per_line_safe(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlWriter(tmp_path / "t.jsonl", max_bytes=0)
        # a single oversized line still lands in one segment
        writer = JsonlWriter(tmp_path / "big.jsonl", max_bytes=4)
        writer.write_line('{"k": "0123456789"}')
        writer.close()
        assert len(writer.paths) == 1


class TestReconstructionHelpers:
    def test_collect_eviction_priorities_groups_by_cache(self):
        events = [
            EvictionEvent(1, "n4", 0, 0.5, 0, False),
            EvictionEvent(2, "n8", 0, 0.25, 0, False),
            EvictionEvent(3, "n4", 0, None, 0, False),  # untracked: skipped
            EvictionEvent(4, "n4", 0, 1.0, 1, True),
        ]
        assert collect_eviction_priorities(events) == {
            "n4": [0.5, 1.0], "n8": [0.25],
        }

    def test_count_by_kind_empty(self):
        assert count_by_kind([]) == {}
