"""Tests for the shared substrates: Bloom filter, sorted multiset, stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import BloomFilter, SortedMultiset, empirical_cdf, geometric_mean
from repro.util.statistics import ks_distance


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(num_bits=2048, num_hashes=3)
        keys = list(range(0, 1000, 7))
        for k in keys:
            bf.add(k)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(num_bits=4096, num_hashes=3)
        for k in range(200):
            bf.add(k)
        fps = sum(1 for k in range(10_000, 12_000) if k in bf)
        assert fps / 2000 < 0.05

    def test_clear(self):
        bf = BloomFilter(64)
        bf.add(1)
        bf.clear()
        assert 1 not in bf
        assert len(bf) == 0

    def test_optimal_hash_count_from_hint(self):
        bf = BloomFilter(num_bits=1000, expected_items=100)
        assert bf.num_hashes == round(math.log(2) * 10)

    def test_theoretical_fpr_monotone(self):
        bf = BloomFilter(256, num_hashes=2)
        rates = []
        for k in range(50):
            bf.add(k)
            rates.append(bf.false_positive_rate())
        assert rates == sorted(rates)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(64, num_hashes=0)


class TestSortedMultiset:
    def test_rank_counts_strictly_less(self):
        ms = SortedMultiset([1, 3, 3, 5])
        assert ms.rank(1) == 0
        assert ms.rank(3) == 1
        assert ms.rank(4) == 3
        assert ms.rank(99) == 4

    def test_add_remove_contains(self):
        ms = SortedMultiset()
        ms.add(2)
        ms.add(2)
        assert 2 in ms
        ms.remove(2)
        assert 2 in ms
        ms.remove(2)
        assert 2 not in ms

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            SortedMultiset([1]).remove(9)

    def test_min_max(self):
        ms = SortedMultiset([5, 1, 9])
        assert ms.min() == 1
        assert ms.max() == 9

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            SortedMultiset().min()

    @given(st.lists(st.integers(-50, 50), max_size=60))
    def test_matches_reference_semantics(self, xs):
        ms = SortedMultiset()
        ref: list[int] = []
        for x in xs:
            ms.add(x)
            ref.append(x)
        ref.sort()
        assert list(ms) == ref
        for probe in (-51, 0, 51):
            assert ms.rank(probe) == sum(1 for v in ref if v < probe)


class TestStatistics:
    def test_geometric_mean_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_geometric_mean_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empirical_cdf(self):
        cdf = empirical_cdf([0.1, 0.5, 0.9], [0.0, 0.1, 0.5, 1.0])
        assert list(cdf) == [0.0, pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([], [0.5])

    def test_ks_distance_of_uniform_sample(self):
        xs = [(i + 0.5) / 1000 for i in range(1000)]
        assert ks_distance(xs, lambda x: x) < 0.01

    def test_ks_distance_detects_mismatch(self):
        xs = [0.9] * 100
        assert ks_distance(xs, lambda x: x) > 0.8


class TestBloomBitRounding:
    def test_num_bits_rounds_up_to_word_multiple(self):
        assert BloomFilter(100).num_bits == 128
        assert BloomFilter(1).num_bits == 64
        assert BloomFilter(65).num_bits == 128

    def test_exact_multiple_unchanged(self):
        assert BloomFilter(64).num_bits == 64
        assert BloomFilter(2048).num_bits == 2048

    def test_hash_hint_uses_rounded_size(self):
        # 100 -> 128 bits; k = round(ln2 * 128/16) = 6, not round(ln2*100/16)=4
        bf = BloomFilter(num_bits=100, expected_items=16)
        assert bf.num_hashes == round(math.log(2) * 128 / 16)

    def test_rounded_filter_still_correct(self):
        bf = BloomFilter(100, num_hashes=3)
        for k in range(50):
            bf.add(k)
        assert all(k in bf for k in range(50))
