"""Tests for the cache controller: hits, misses, writebacks, stats."""

import random

import pytest

from repro.core import Cache, FullyAssociativeArray, SetAssociativeArray, ZCacheArray
from repro.replacement import LRU


class TestBasics:
    def test_miss_then_hit(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        assert not cache.access(1).hit
        assert cache.access(1).hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Cache(SetAssociativeArray(2, 8), LRU()).access(-1)

    def test_read_write_counters(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(1, is_write=False)
        cache.access(2, is_write=True)
        assert cache.stats.reads == 1
        assert cache.stats.writes == 1

    def test_len_and_contains(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(1)
        cache.access(2)
        assert len(cache) == 2
        assert 1 in cache and 3 not in cache

    def test_fill_into_empty_counts(self):
        cache = Cache(SetAssociativeArray(4, 4), LRU())
        for a in range(8):
            cache.access(a)
        assert cache.stats.fills_empty == 8
        assert cache.stats.evictions == 0


class TestWriteback:
    def test_dirty_eviction_writes_back(self):
        cache = Cache(SetAssociativeArray(1, 4), LRU())
        cache.access(0, is_write=True)  # set 0, dirty
        result = cache.access(4)  # conflicts, evicts 0
        assert result.evicted == 0
        assert result.writeback
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache(SetAssociativeArray(1, 4), LRU())
        cache.access(0)
        result = cache.access(4)
        assert result.evicted == 0
        assert not result.writeback

    def test_write_hit_marks_dirty(self):
        cache = Cache(SetAssociativeArray(1, 4), LRU())
        cache.access(0)
        cache.access(0, is_write=True)
        assert cache.is_dirty(0)

    def test_dirty_state_cleared_on_eviction(self):
        cache = Cache(SetAssociativeArray(1, 4), LRU())
        cache.access(0, is_write=True)
        cache.access(4)  # evict dirty 0
        cache.access(0)  # re-fetch clean
        assert not cache.is_dirty(0)


class TestInvalidate:
    def test_invalidate_removes_block(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(1)
        assert cache.invalidate(1) is False  # clean
        assert 1 not in cache
        assert cache.stats.invalidations == 1

    def test_invalidate_dirty_reports_writeback(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(1, is_write=True)
        assert cache.invalidate(1) is True
        assert cache.stats.writebacks == 1

    def test_invalidate_missing_is_noop(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        assert cache.invalidate(42) is False
        assert cache.stats.invalidations == 0

    def test_policy_consistent_after_invalidate(self):
        cache = Cache(ZCacheArray(2, 16, levels=2), LRU())
        rng = random.Random(0)
        for _ in range(200):
            cache.access(rng.randrange(100))
        victim = next(iter(cache.resident()))
        cache.invalidate(victim)
        for _ in range(200):
            cache.access(rng.randrange(100))
        cache.array.check_invariants()


class TestAccounting:
    def test_hit_reads_tags_per_way_and_one_data(self):
        cache = Cache(SetAssociativeArray(4, 8), LRU())
        cache.access(1)
        tr0, dr0 = cache.stats.tag_reads, cache.stats.data_reads
        cache.access(1)
        assert cache.stats.tag_reads - tr0 == 4
        assert cache.stats.data_reads - dr0 == 1

    def test_miss_accounts_walk_and_install(self):
        cache = Cache(SetAssociativeArray(4, 8), LRU())
        cache.access(1)
        assert cache.stats.walk_tag_reads == 4
        assert cache.stats.tag_writes == 1
        assert cache.stats.data_writes == 1

    def test_relocation_accounting(self):
        arr = ZCacheArray(4, 32, levels=3, hash_seed=3)
        cache = Cache(arr, LRU())
        rng = random.Random(5)
        for _ in range(3000):
            cache.access(rng.randrange(2000))
        # Relocations move data: data reads/writes reflect them.
        assert cache.stats.relocations > 0
        assert cache.stats.data_writes >= cache.stats.misses
        assert cache.stats.data_reads >= cache.stats.relocations

    def test_miss_rate_property(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(1)
        cache.access(1)
        assert cache.stats.miss_rate == pytest.approx(0.5)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_empty_cache_rates_are_zero(self):
        stats = Cache(SetAssociativeArray(2, 8), LRU()).stats
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0


class TestFullyAssociative:
    def test_no_conflicts_until_capacity(self):
        cache = Cache(FullyAssociativeArray(16), LRU())
        for a in range(16):
            cache.access(a)
        assert cache.stats.evictions == 0
        result = cache.access(100)
        assert result.evicted == 0  # global LRU

    def test_always_evicts_global_lru(self):
        cache = Cache(FullyAssociativeArray(4), LRU())
        for a in (1, 2, 3, 4):
            cache.access(a)
        cache.access(1)  # refresh
        assert cache.access(5).evicted == 2

    def test_free_list_reuse_after_invalidate(self):
        cache = Cache(FullyAssociativeArray(4), LRU())
        for a in (1, 2, 3, 4):
            cache.access(a)
        cache.invalidate(3)
        result = cache.access(9)
        assert result.filled_empty
        cache.array.check_invariants()


class TestAbsorbWriteback:
    def test_present_line_absorbs_and_dirties(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(5, is_write=False)
        writes_before = cache.stats.data_writes
        assert cache.absorb_writeback(5) is True
        assert cache.is_dirty(5)
        assert cache.stats.data_writes == writes_before + 1

    def test_absent_line_refuses(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        assert cache.absorb_writeback(5) is False
        assert cache.stats.data_writes == 0

    def test_does_not_touch_replacement_state(self):
        # An L1 dirty eviction is not a demand reference: absorbing it
        # must not refresh recency, unlike access().
        cache = Cache(SetAssociativeArray(2, 1), LRU())
        cache.access(0)
        cache.access(2)  # set now [0, 2], LRU = 0
        cache.absorb_writeback(0)
        cache.access(4)  # evicts the LRU line
        assert 0 not in cache
        assert 2 in cache

    def test_absorbed_dirt_writes_back_on_eviction(self):
        cache = Cache(SetAssociativeArray(1, 1), LRU())
        cache.access(0, is_write=False)
        cache.absorb_writeback(0)
        outcome = cache.access(8)
        assert outcome.evicted == 0
        assert outcome.writeback is True
