"""Property-based tests for the composite Section II designs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ColumnAssociativeCache, VictimCache

TRACE = st.lists(
    st.tuples(st.integers(0, 300), st.booleans()), min_size=1, max_size=300
)


class TestVictimCacheProperties:
    @given(trace=TRACE)
    @settings(max_examples=40, deadline=None)
    def test_main_and_buffer_disjoint(self, trace):
        vc = VictimCache(2, 8, victim_entries=4)
        for addr, is_write in trace:
            vc.access(addr, is_write)
            main_set = set(vc.main.resident())
            buf_set = set(vc.buffer.resident())
            assert not (main_set & buf_set), "block duplicated across levels"
            assert addr in main_set, "accessed block must land in main"

    @given(trace=TRACE)
    @settings(max_examples=40, deadline=None)
    def test_stats_identities(self, trace):
        vc = VictimCache(2, 8, victim_entries=4)
        for addr, is_write in trace:
            vc.access(addr, is_write)
        s = vc.stats
        assert s.accesses == len(trace)
        assert s.hits + s.misses == s.accesses
        assert vc.victim_stats.victim_hits <= vc.victim_stats.victim_probes
        assert vc.victim_stats.swaps == vc.victim_stats.victim_hits

    @given(trace=TRACE)
    @settings(max_examples=30, deadline=None)
    def test_arrays_stay_consistent(self, trace):
        vc = VictimCache(2, 8, victim_entries=4)
        for addr, is_write in trace:
            vc.access(addr, is_write)
        vc.main.array.check_invariants()
        vc.buffer.array.check_invariants()
        assert len(vc) <= vc.num_blocks


class TestColumnAssociativeProperties:
    @given(trace=TRACE)
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_every_access(self, trace):
        cc = ColumnAssociativeCache(16)
        for addr, is_write in trace:
            cc.access(addr, is_write)
            assert addr in cc, "accessed block must be resident"
        cc.check_invariants()

    @given(trace=TRACE)
    @settings(max_examples=40, deadline=None)
    def test_probe_accounting(self, trace):
        cc = ColumnAssociativeCache(16)
        for addr, is_write in trace:
            cc.access(addr, is_write)
        s = cc.stats
        assert s.accesses == len(trace)
        assert s.first_probe_hits + s.second_probe_hits + s.misses == s.accesses
        assert 0.0 <= s.mean_probes_per_access <= 2.0

    @given(addrs=st.lists(st.integers(0, 300), min_size=2, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_never_worse_capacity_than_direct_mapped_pair(self, addrs):
        # Both locations of a primary set can hold conflicting blocks:
        # two alternating addresses never thrash.
        cc = ColumnAssociativeCache(16)
        a, b = addrs[0], addrs[0] + 16  # same primary set
        cc.access(a)
        cc.access(b)
        hits = sum(cc.access(x) for x in [a, b] * 20)
        assert hits == 40
