"""Tests for the zcache array and its replacement walk."""

import random

import pytest

from repro.core import Cache, SkewAssociativeArray, ZCacheArray
from repro.core.zcache import levels_for_candidates, replacement_candidates
from repro.replacement import LRU


class TestCandidateFormula:
    def test_paper_example_w3_l3(self):
        # Fig. 1 walks a 3-way cache three levels: 3 + 6 + 12 = 21.
        assert replacement_candidates(3, 3) == 21

    def test_paper_configurations(self):
        assert replacement_candidates(4, 1) == 4  # Z4/4 (skew)
        assert replacement_candidates(4, 2) == 16  # Z4/16
        assert replacement_candidates(4, 3) == 52  # Z4/52

    def test_two_way(self):
        # W=2: each level adds 2 candidates... R = 2 * L.
        assert replacement_candidates(2, 3) == 6

    def test_levels_for_candidates(self):
        assert levels_for_candidates(4, 16) == 2
        assert levels_for_candidates(4, 17) == 3
        assert levels_for_candidates(4, 52) == 3

    def test_levels_for_candidates_two_way(self):
        # R(2, L) = 2L grows linearly but always reaches the target.
        assert levels_for_candidates(2, 6) == 3
        assert levels_for_candidates(2, 7) == 4

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            replacement_candidates(0, 2)
        with pytest.raises(ValueError):
            replacement_candidates(4, 0)

    def test_rejects_degenerate_geometry(self):
        # A 1-way "zcache" has no alternative positions: R degenerates
        # to 1 for every L. It used to be silently returned; the
        # formula now rejects it (pinned messages — callers match them).
        with pytest.raises(
            ValueError, match=r"num_ways must be >= 2 for a zcache walk, got 1"
        ):
            replacement_candidates(1, 5)
        with pytest.raises(
            ValueError, match=r"num_ways must be >= 2 for a zcache walk, got 1"
        ):
            levels_for_candidates(1, 4)
        with pytest.raises(ValueError, match=r"levels must be >= 1, got 0"):
            replacement_candidates(4, 0)
        with pytest.raises(ValueError, match=r"levels must be >= 1, got -1"):
            replacement_candidates(4, -1)
        with pytest.raises(ValueError, match=r"target must be >= 1, got 0"):
            levels_for_candidates(4, 0)


class TestWalk:
    def make_full_cache(self, **kwargs):
        arr = ZCacheArray(4, 64, **kwargs)
        cache = Cache(arr, LRU())
        rng = random.Random(0)
        while arr.occupancy < 1.0:
            cache.access(rng.randrange(10_000))
        return arr, cache

    def test_full_walk_size(self):
        arr, _ = self.make_full_cache(levels=3)
        repl = arr.build_replacement(999_999)
        assert len(repl.candidates) == 52
        assert repl.tag_reads == 52
        by_level = {}
        for c in repl.candidates:
            by_level[c.level] = by_level.get(c.level, 0) + 1
        assert by_level == {0: 4, 1: 12, 2: 36}

    def test_children_exclude_parent_way(self):
        arr, _ = self.make_full_cache(levels=2)
        repl = arr.build_replacement(123_456_789)
        for c in repl.candidates:
            if c.parent is not None:
                assert c.position.way != c.parent.position.way

    def test_children_at_hash_of_parent_address(self):
        arr, _ = self.make_full_cache(levels=2)
        repl = arr.build_replacement(42_424_242)
        for c in repl.candidates:
            if c.parent is not None:
                expected = arr.hashes[c.position.way](c.parent.address)
                assert c.position.index == expected

    def test_level0_at_incoming_hashes(self):
        arr, _ = self.make_full_cache(levels=2)
        incoming = 777_777
        repl = arr.build_replacement(incoming)
        roots = [c for c in repl.candidates if c.level == 0]
        assert len(roots) == 4
        for c in roots:
            assert c.position.index == arr.hashes[c.position.way](incoming)

    def test_candidate_limit_truncates(self):
        arr, _ = self.make_full_cache(levels=3, candidate_limit=20)
        repl = arr.build_replacement(31_337)
        assert len(repl.candidates) == 20
        assert repl.truncated

    def test_candidate_limit_below_ways_rejected(self):
        with pytest.raises(ValueError):
            ZCacheArray(4, 64, candidate_limit=2)

    def test_walk_on_empty_cache_stops_at_level0(self):
        arr = ZCacheArray(4, 64, levels=3)
        repl = arr.build_replacement(5)
        assert len(repl.candidates) == 4
        assert all(c.address is None for c in repl.candidates)


class TestRelocation:
    def test_commit_deep_candidate_relocates_ancestors(self):
        arr = ZCacheArray(4, 64, levels=3)
        cache = Cache(arr, LRU())
        rng = random.Random(1)
        while arr.occupancy < 1.0:
            cache.access(rng.randrange(10_000))
        incoming = 123_123
        repl = arr.build_replacement(incoming)
        deep = next(c for c in repl.usable() if c.level == 2 and c.address is not None)
        path = deep.path_to_root()
        moved = [c.address for c in path[1:]]  # ancestors that will move
        result = arr.commit_replacement(repl, deep)
        assert result.evicted == deep.address
        assert result.relocations == 2
        assert incoming in arr
        assert deep.address not in arr
        for addr in moved:
            assert addr in arr  # relocated, not evicted
        arr.check_invariants()

    def test_commit_level0_no_relocation(self):
        arr = ZCacheArray(4, 64, levels=2)
        cache = Cache(arr, LRU())
        rng = random.Random(2)
        while arr.occupancy < 1.0:
            cache.access(rng.randrange(10_000))
        repl = arr.build_replacement(55_555)
        root = next(c for c in repl.usable() if c.level == 0)
        result = arr.commit_replacement(repl, root)
        assert result.relocations == 0
        assert arr.lookup(55_555) == root.position

    def test_commit_invalid_candidate_rejected(self):
        arr = ZCacheArray(4, 64, levels=2)
        repl = arr.build_replacement(1)
        repl.candidates[0].valid = False
        with pytest.raises(ValueError):
            arr.commit_replacement(repl, repl.candidates[0])

    def test_stale_candidate_detected(self):
        arr = ZCacheArray(4, 64, levels=2)
        cache = Cache(arr, LRU())
        rng = random.Random(3)
        while arr.occupancy < 1.0:
            cache.access(rng.randrange(10_000))
        repl = arr.build_replacement(99_111)
        victim = next(c for c in repl.usable() if c.address is not None)
        arr.evict_address(victim.address)  # concurrent invalidation
        with pytest.raises(RuntimeError):
            arr.commit_replacement(repl, victim)


class TestExtensions:
    def run_traffic(self, arr, n=3000, seed=0, footprint=2000):
        cache = Cache(arr, LRU())
        rng = random.Random(seed)
        for _ in range(n):
            cache.access(rng.randrange(footprint))
        arr.check_invariants()
        return cache

    def test_exact_repeat_filter(self):
        arr = ZCacheArray(2, 8, levels=4, repeat_filter="exact")
        self.run_traffic(arr, footprint=100)
        # In a tiny cache with a deep walk, repeats must be detected.
        assert arr.stats.repeats > 0

    def test_bloom_repeat_filter(self):
        arr = ZCacheArray(2, 8, levels=4, repeat_filter="bloom")
        self.run_traffic(arr, footprint=100)
        assert arr.stats.repeats > 0

    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError):
            ZCacheArray(2, 8, repeat_filter="cuckoo")

    def test_dfs_strategy_runs_and_relocates_more(self):
        bfs = ZCacheArray(4, 256, levels=3, strategy="bfs", hash_seed=5)
        dfs = ZCacheArray(4, 256, levels=3, strategy="dfs", hash_seed=5, seed=9)
        self.run_traffic(bfs, n=12_000, footprint=8_000)
        self.run_traffic(dfs, n=12_000, footprint=8_000)
        assert dfs.stats.walks > 0
        # DFS chains are deep: relocations per walk exceed BFS's.
        assert (
            dfs.stats.mean_relocations_per_walk
            > bfs.stats.mean_relocations_per_walk
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ZCacheArray(4, 64, strategy="ids")

    def test_skew_is_one_level_zcache(self):
        skew = SkewAssociativeArray(4, 64)
        assert skew.levels == 1
        assert skew.nominal_candidates() == 4

    def test_blocks_always_at_legal_positions(self):
        arr = ZCacheArray(3, 32, levels=3, hash_seed=7)
        self.run_traffic(arr, n=5000, footprint=1000)
        for addr in arr.resident():
            pos = arr.lookup(addr)
            assert pos.index == arr.hashes[pos.way](addr)


class TestExpectedRelocations:
    def test_formula_values(self):
        from repro.core.zcache import expected_relocations

        # W=4, L=3: (0*4 + 1*12 + 2*36) / 52.
        assert expected_relocations(4, 3) == pytest.approx(84 / 52)
        assert expected_relocations(4, 1) == 0.0
        # W=2, L=2: (0*2 + 1*2) / 4.
        assert expected_relocations(2, 2) == pytest.approx(0.5)

    def test_measured_tracks_but_undershoots_uniformity(self):
        from repro.core.zcache import expected_relocations

        arr = ZCacheArray(4, 256, levels=3, hash_seed=5)
        cache = Cache(arr, LRU())
        rng = random.Random(6)
        for _ in range(25_000):
            cache.access(rng.randrange(8_000))
        measured = arr.stats.mean_relocations_per_walk
        analytic = expected_relocations(4, 3)
        assert 0.6 * analytic < measured <= analytic + 1e-9
