"""Tests for the adaptive-associativity controller (paper Section VIII)."""

import itertools
import random

import pytest

from repro.core import AdaptiveZCache, ZCacheArray
from repro.core.setassoc import SetAssociativeArray
from repro.replacement import LRU
from repro.workloads.patterns import mixed, sequential_scan, zipf


def make(levels=3, lines=128, **kw):
    return AdaptiveZCache(
        ZCacheArray(4, lines, levels=levels, hash_seed=1), LRU(), **kw
    )


class TestConstruction:
    def test_requires_zcache(self):
        with pytest.raises(TypeError):
            AdaptiveZCache(SetAssociativeArray(4, 64), LRU())

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            make(grow_threshold=0.1, shrink_threshold=0.5)

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            make(epoch_misses=0)

    def test_starts_at_full_depth(self):
        cache = make()
        assert cache.current_limit == 52
        assert cache.array.candidate_limit == 52

    def test_min_candidates_floor_validated(self):
        with pytest.raises(ValueError):
            make(min_candidates=2)  # below W


class TestAdaptation:
    def test_streaming_shrinks_to_skew(self):
        cache = make(epoch_misses=256)
        for addr in itertools.islice(sequential_scan(4096), 20_000):
            cache.access(addr)
        assert cache.current_limit == 4  # the skew configuration
        assert cache.adaptive_stats.epochs > 0

    def test_reuse_traffic_keeps_depth(self):
        cache = make(lines=256, epoch_misses=256)
        trace = mixed(
            [(0.5, zipf(2048, 1.2, seed=1)), (0.5, sequential_scan(1280))],
            seed=3,
        )
        for addr in itertools.islice(trace, 60_000):
            cache.access(addr)
        assert cache.current_limit >= 26  # stays near full depth

    def test_saves_tag_bandwidth_on_streams(self):
        from repro.core import Cache

        fixed = Cache(ZCacheArray(4, 128, levels=3, hash_seed=1), LRU())
        adaptive = make(epoch_misses=128)
        for addr in itertools.islice(sequential_scan(4096), 15_000):
            fixed.access(addr)
            adaptive.access(addr)
        per_miss_fixed = fixed.stats.walk_tag_reads / fixed.stats.misses
        per_miss_adaptive = (
            adaptive.stats.walk_tag_reads / adaptive.stats.misses
        )
        assert per_miss_adaptive < 0.5 * per_miss_fixed
        # Streaming gets no associativity benefit, so miss rates match.
        assert adaptive.stats.miss_rate == pytest.approx(
            fixed.stats.miss_rate, abs=0.01
        )

    def test_history_recorded(self):
        cache = make(epoch_misses=64)
        rng = random.Random(2)
        for _ in range(5_000):
            cache.access(rng.randrange(2_000))
        hist = cache.adaptive_stats.history
        assert len(hist) == cache.adaptive_stats.epochs
        for _epoch, limit, fraction in hist:
            assert 4 <= limit <= 52
            assert 0.0 <= fraction <= 1.0

    def test_invariants_while_adapting(self):
        cache = make(epoch_misses=32)
        rng = random.Random(3)
        for i in range(8_000):
            # Alternate phases to force limit changes both ways.
            if (i // 2_000) % 2:
                cache.access(rng.randrange(700))
            else:
                cache.access(i % 5_000)
        cache.array.check_invariants()

    def test_limit_bounds_respected(self):
        cache = make(epoch_misses=16)
        rng = random.Random(4)
        for _ in range(6_000):
            cache.access(rng.randrange(3_000))
        for _e, limit, _f in cache.adaptive_stats.history:
            assert cache.min_candidates <= limit <= cache.max_candidates
