"""Tests for the off-lock service surface of the two-phase zcache.

Covers the ZServe discipline at the core layer: ``prepare_fill`` /
``plan_is_fresh`` / ``commit_prepared``, the ``Cache.probe`` read path,
and — the concurrency edge ZServe's off-lock walk actually produces —
stale-retry accounting when an ``invalidate`` lands between phase 1
(the walk) and phase 2 (the commit), verified under the ZSpec runtime
sanitizer.
"""

import random

import pytest

from repro.analysis.sanitizer import sanitize
from repro.core import Cache, StaleWalkError, TwoPhaseZCache, ZCacheArray
from repro.replacement import LRU


def fill_cache(cache, n=20_000, footprint=3_000, seed=11):
    rng = random.Random(seed)
    for _ in range(n):
        cache.access(rng.randrange(footprint), is_write=rng.random() < 0.25)
    return cache


def fresh_address(cache, footprint=3_000):
    addr = footprint + 1
    while addr in cache:
        addr += 1
    return addr


class TestProbe:
    def test_probe_hit_counts_like_access(self):
        cache = Cache(ZCacheArray(4, 64, hash_seed=1), LRU())
        cache.access(42)
        before = cache.stats.hits
        assert cache.probe(42) is True
        assert cache.stats.hits == before + 1

    def test_probe_miss_does_not_allocate(self):
        cache = Cache(ZCacheArray(4, 64, hash_seed=1), LRU())
        assert cache.probe(7) is False
        assert cache.stats.misses == 1
        assert len(cache) == 0
        assert 7 not in cache

    def test_probe_refreshes_policy_state(self):
        # A probed block must become MRU, exactly like a hit.
        policy = LRU()
        cache = Cache(ZCacheArray(4, 64, hash_seed=1), policy)
        cache.access(1)
        cache.access(2)
        cache.probe(1)
        assert policy.score(1) < policy.score(2)  # higher score = evict

    def test_probe_write_marks_dirty(self):
        cache = Cache(ZCacheArray(4, 64, hash_seed=1), LRU())
        cache.access(9)
        assert not cache.is_dirty(9)
        cache.probe(9, is_write=True)
        assert cache.is_dirty(9)

    def test_probe_rejects_negative_address(self):
        cache = Cache(ZCacheArray(4, 64, hash_seed=1), LRU())
        with pytest.raises(ValueError):
            cache.probe(-1)


class TestPrepareCommit:
    def make_cache(self, **kwargs):
        return TwoPhaseZCache(
            ZCacheArray(4, 64, levels=2, hash_seed=3, **kwargs), LRU()
        )

    def test_round_trip_counts_one_miss(self):
        cache = self.make_cache()
        plan = cache.prepare_fill(5)
        assert cache.plan_is_fresh(plan)
        result = cache.commit_prepared(5, plan)
        assert not result.hit
        assert 5 in cache
        assert cache.stats.accesses == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_prepare_mutates_nothing(self):
        cache = fill_cache(self.make_cache(), footprint=1_500)
        resident = set(cache.resident())
        accesses = cache.stats.accesses
        cache.prepare_fill(fresh_address(cache))
        assert set(cache.resident()) == resident
        assert cache.stats.accesses == accesses

    def test_commit_after_racing_install_is_a_hit(self):
        cache = self.make_cache()
        plan = cache.prepare_fill(5)
        cache.access(5)  # the "other thread" wins the install race
        result = cache.commit_prepared(5, plan)
        assert result.hit
        assert cache.stats.hits == 1
        assert cache.stale_retries == 0

    def test_commit_wrong_address_rejected(self):
        cache = self.make_cache()
        plan = cache.prepare_fill(5)
        with pytest.raises(ValueError, match="prepared for"):
            cache.commit_prepared(6, plan)

    def test_write_commit_marks_dirty(self):
        cache = self.make_cache()
        plan = cache.prepare_fill(5)
        cache.commit_prepared(5, plan, is_write=True)
        assert cache.is_dirty(5)
        assert cache.stats.writes == 1


class TestInterleavedInvalidate:
    """Satellite: an invalidate between phase 1 and phase 2.

    This is the exact interleaving ZServe's off-lock walk produces —
    another client invalidates a walked block before the commit takes
    the shard lock. The plan must be rejected with ``stale_retries``
    accounting and *zero* array mutation, and the retry must succeed.
    """

    def make_filled(self):
        array = sanitize(ZCacheArray(4, 64, levels=2, hash_seed=7), seed=7)
        cache = TwoPhaseZCache(array, LRU())
        fill_cache(cache, n=15_000, footprint=1_500)
        return array, cache

    def test_stale_plan_detected_and_retried(self):
        array, cache = self.make_filled()
        addr = fresh_address(cache, footprint=1_500)
        plan = cache.prepare_fill(addr)
        victim = next(c.address for c in plan.candidates if c.address is not None)
        assert victim in cache
        cache.invalidate(victim)
        assert not cache.plan_is_fresh(plan)

        resident_before = set(cache.resident())
        retries_before = cache.stale_retries
        misses_before = cache.stats.misses
        with pytest.raises(StaleWalkError):
            cache.commit_prepared(addr, plan)
        # Accounting: exactly one stale retry, no access/miss recorded.
        assert cache.stale_retries == retries_before + 1
        assert cache.stats.misses == misses_before
        # Atomicity: the rejected commit touched nothing.
        assert set(cache.resident()) == resident_before
        assert addr not in cache

        # The retry (fresh walk) succeeds and the block lands.
        fresh_plan = cache.prepare_fill(addr)
        assert cache.plan_is_fresh(fresh_plan)
        result = cache.commit_prepared(addr, fresh_plan)
        assert not result.hit and addr in cache
        array.final_check()

    def test_invalidate_of_unwalked_block_keeps_plan_fresh(self):
        array, cache = self.make_filled()
        addr = fresh_address(cache, footprint=1_500)
        plan = cache.prepare_fill(addr)
        walked = {c.address for c in plan.candidates}
        bystander = next(a for a in cache.resident() if a not in walked)
        cache.invalidate(bystander)
        assert cache.plan_is_fresh(plan)
        cache.commit_prepared(addr, plan)
        assert addr in cache
        array.final_check()

    def test_second_phase_accounting_survives_sanitized_traffic(self):
        array, cache = self.make_filled()
        # Heavy traffic on a full sanitized cache exercises phase-2
        # wins; the counters must stay coherent and the final state
        # must pass the deep scan.
        assert cache.second_phase_walks > 0
        assert 0 <= cache.second_phase_wins <= cache.second_phase_walks
        assert cache.stale_retries >= 0
        s = cache.stats
        assert s.accesses == s.hits + s.misses
        array.final_check()


class TestRefactorEquivalence:
    def test_fill_split_is_behaviour_preserving(self):
        # _fill was split into _fill/_fill_with for the service
        # surface; the sequential protocol must be bit-identical.
        t1 = fill_cache(
            TwoPhaseZCache(ZCacheArray(4, 128, levels=2, hash_seed=1), LRU())
        )
        t2 = TwoPhaseZCache(ZCacheArray(4, 128, levels=2, hash_seed=1), LRU())
        rng = random.Random(11)
        for _ in range(20_000):
            addr = rng.randrange(3_000)
            is_write = rng.random() < 0.25
            plan = None
            if addr not in t2:
                plan = t2.prepare_fill(addr)
            if plan is not None:
                t2.commit_prepared(addr, plan, is_write=is_write)
            else:
                t2.access(addr, is_write=is_write)
        assert set(t1.resident()) == set(t2.resident())
        assert t1.stats.misses == t2.stats.misses
        assert t1.second_phase_wins == t2.second_phase_wins
