"""Tests for the replacement timeline (paper Fig. 1g and T_walk)."""

import pytest

from repro.core.timeline import (
    ReplacementTimeline,
    TimelineEvent,
    schedule_replacement,
    walk_cycles,
)


class TestWalkCycles:
    def test_paper_example(self):
        # W=3, L=3, T_tag=4: the paper's 21 candidates in 12 cycles.
        assert walk_cycles(3, 3, t_tag=4) == 12

    def test_formula_levels(self):
        # W=4, L=3: max(4,1) + max(4,3) + max(4,9) = 4 + 4 + 9.
        assert walk_cycles(4, 3, t_tag=4) == 17

    def test_wide_caches_cover_tag_latency(self):
        # For W > 2 the deeper levels exceed T_tag and dominate.
        assert walk_cycles(8, 2, t_tag=4) == 4 + 7

    def test_validation(self):
        with pytest.raises(ValueError):
            walk_cycles(0, 1)


class TestSchedule:
    def test_paper_timeline_shape(self):
        tl = schedule_replacement(ways=3, levels=3, relocations=1)
        assert tl.walk_done == 12
        assert tl.process_done == 20  # 12-cycle walk + one relocation
        assert tl.miss_served == 100
        assert tl.hidden

    def test_no_relocations(self):
        tl = schedule_replacement(4, 2, relocations=0)
        assert tl.process_done == tl.walk_done

    def test_relocations_serialise(self):
        one = schedule_replacement(4, 3, relocations=1)
        two = schedule_replacement(4, 3, relocations=2)
        assert two.process_done == one.process_done + 8

    def test_install_waits_for_memory(self):
        tl = schedule_replacement(4, 2, relocations=0)
        install = [e for e in tl.events if e.label == "install incoming"]
        assert install[0].start >= 100

    def test_hidden_becomes_exposed_with_slow_tags(self):
        tl = schedule_replacement(4, 3, relocations=2, t_tag=40)
        assert not tl.hidden

    def test_relocation_bounds_validated(self):
        with pytest.raises(ValueError):
            schedule_replacement(4, 2, relocations=5)

    def test_render_ascii(self):
        tl = schedule_replacement(3, 3, relocations=2)
        rows = tl.render(width=40)
        assert any("walk level 0" in r for r in rows)
        assert any("#" in r for r in rows)

    def test_empty_timeline_properties(self):
        tl = ReplacementTimeline(events=[])
        assert tl.walk_done == 0
        assert tl.process_done == 0
        tl2 = ReplacementTimeline(
            events=[TimelineEvent(0, 5, "tag", "walk level 0 (4r)")]
        )
        assert tl2.walk_done == 5
