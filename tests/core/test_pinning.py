"""Tests for block pinning (paper Section I: buffering/pinning systems)."""

import random

import pytest

from repro.core import (
    Cache,
    FullyAssociativeArray,
    SetAssociativeArray,
    TwoPhaseZCache,
    ZCacheArray,
)
from repro.replacement import LRU


class TestPinBasics:
    def test_pin_requires_resident(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        with pytest.raises(KeyError):
            cache.pin(1)

    def test_pin_unpin_cycle(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(1)
        cache.pin(1)
        assert cache.is_pinned(1)
        assert cache.pinned_count == 1
        cache.unpin(1)
        assert not cache.is_pinned(1)

    def test_unpin_missing_is_noop(self):
        Cache(SetAssociativeArray(2, 8), LRU()).unpin(99)

    def test_pinned_block_never_evicted(self):
        cache = Cache(SetAssociativeArray(1, 4), LRU())
        cache.access(0)  # set 0
        cache.pin(0)
        for i in range(1, 20):
            cache.access(i * 4)  # all conflict with 0
        assert 0 in cache
        assert cache.stats.pin_overflows > 0

    def test_bypass_result_flagged(self):
        cache = Cache(SetAssociativeArray(1, 4), LRU())
        cache.access(0)
        cache.pin(0)
        result = cache.access(4)
        assert result.bypassed
        assert not result.hit
        assert 4 not in cache

    def test_bypassed_write_not_marked_dirty(self):
        cache = Cache(SetAssociativeArray(1, 4), LRU())
        cache.access(0)
        cache.pin(0)
        cache.access(4, is_write=True)
        assert not cache.is_dirty(4)

    def test_invalidate_clears_pin(self):
        cache = Cache(SetAssociativeArray(2, 8), LRU())
        cache.access(1)
        cache.pin(1)
        cache.invalidate(1)
        assert not cache.is_pinned(1)
        cache.access(1)
        cache.access(9)  # may evict 1 again later without error
        assert 1 in cache


class TestPinnedRelocation:
    def test_zcache_relocates_pinned_blocks(self):
        # Pinned blocks may move between their legal positions; pinning
        # only forbids eviction.
        arr = ZCacheArray(4, 32, levels=3, hash_seed=1)
        cache = Cache(arr, LRU())
        rng = random.Random(0)
        for _ in range(2_000):
            cache.access(rng.randrange(1_000))
        pinned = list(arr.resident())[:20]
        for addr in pinned:
            cache.pin(addr)
        for _ in range(6_000):
            cache.access(rng.randrange(1_000))
        for addr in pinned:
            assert addr in arr, "pinned block must stay resident"
        arr.check_invariants()

    def test_fully_associative_pin_overflow_at_capacity(self):
        cache = Cache(FullyAssociativeArray(8), LRU())
        for a in range(8):
            cache.access(a)
            cache.pin(a)
        result = cache.access(100)
        assert result.bypassed
        assert cache.stats.pin_overflows == 1


class TestPinnabilityAcrossDesigns:
    def fill_and_pin(self, cache, blocks, rng):
        """Pin random blocks until the first overflow; return count."""
        pinned = 0
        for _ in range(blocks * 4):
            addr = rng.randrange(1 << 24)
            result = cache.access(addr)
            if result.bypassed:
                return pinned
            cache.pin(addr)
            pinned += 1
        return pinned

    def test_zcache_pins_more_than_setassoc(self):
        # The paper's Section I motivation: low associativity makes it
        # hard to buffer many blocks (the first fully-pinned set stops
        # you); a zcache's 52 candidates push overflow much later.
        rng_a, rng_b = random.Random(1), random.Random(1)
        sa = Cache(SetAssociativeArray(4, 64, hash_kind="h3"), LRU())
        z = Cache(ZCacheArray(4, 64, levels=3, hash_seed=2), LRU())
        sa_pinned = self.fill_and_pin(sa, 256, rng_a)
        z_pinned = self.fill_and_pin(z, 256, rng_b)
        assert z_pinned > sa_pinned
        assert z_pinned > 0.8 * 256  # zcache pins most of its capacity

    def test_two_phase_pinning_consistent(self):
        cache = TwoPhaseZCache(ZCacheArray(4, 16, levels=2, hash_seed=3), LRU())
        rng = random.Random(4)
        for _ in range(500):
            cache.access(rng.randrange(200))
        for addr in list(cache.resident())[:10]:
            cache.pin(addr)
        for _ in range(2_000):
            cache.access(rng.randrange(200))
        cache.array.check_invariants()
        for addr in cache._pinned:
            assert addr in cache.array
