"""Cross-design equivalence properties.

Some designs are definitionally special cases of others; these tests
pin those identities down so refactors cannot silently diverge them:

- a one-level zcache IS a skew-associative cache;
- a 1-way set-associative cache IS direct-mapped (and a 1-way zcache
  behaves identically to it given the same hash);
- a random-candidates array sampling as many candidates as it has
  blocks approaches fully-associative behaviour.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Cache,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.hashing import make_hash_family
from repro.replacement import LRU

TRACE = st.lists(st.integers(0, 400), min_size=20, max_size=400)


class TestSkewIsOneLevelZCache:
    @given(trace=TRACE)
    @settings(max_examples=30, deadline=None)
    def test_identical_access_outcomes(self, trace):
        hashes_a = make_hash_family("h3", 4, 16, seed=9)
        hashes_b = make_hash_family("h3", 4, 16, seed=9)
        skew = Cache(SkewAssociativeArray(4, 16, hashes=hashes_a), LRU())
        z1 = Cache(ZCacheArray(4, 16, levels=1, hashes=hashes_b), LRU())
        for addr in trace:
            a = skew.access(addr)
            b = z1.access(addr)
            assert (a.hit, a.evicted) == (b.hit, b.evicted)
        assert skew.stats.misses == z1.stats.misses
        assert set(skew.resident()) == set(z1.resident())


class TestOneWayIsDirectMapped:
    @given(trace=TRACE)
    @settings(max_examples=30, deadline=None)
    def test_sa_and_zcache_one_way_agree(self, trace):
        hashes = make_hash_family("h3", 1, 64, seed=5)
        sa = Cache(
            SetAssociativeArray(1, 64, index_hash=hashes[0]), LRU()
        )
        z = Cache(
            ZCacheArray(1, 64, levels=1, hashes=list(hashes)), LRU()
        )
        for addr in trace:
            a = sa.access(addr)
            b = z.access(addr)
            assert (a.hit, a.evicted) == (b.hit, b.evicted)

    def test_direct_mapped_victim_is_slot_occupant(self):
        cache = Cache(SetAssociativeArray(1, 16), LRU())
        cache.access(3)
        result = cache.access(3 + 16)
        assert result.evicted == 3


class TestRandomCandidatesLimit:
    def test_full_sampling_approaches_fully_associative(self):
        # With n == B the random-candidates cache almost always sees the
        # global LRU block; its miss count approaches the ideal's.
        rng = random.Random(0)
        trace = [rng.randrange(200) for _ in range(8_000)]
        ideal = Cache(FullyAssociativeArray(64), LRU())
        sampled = Cache(RandomCandidatesArray(64, 256, seed=1), LRU())
        for addr in trace:
            ideal.access(addr)
            sampled.access(addr)
        assert sampled.stats.misses <= ideal.stats.misses * 1.03

    def test_single_candidate_is_random_eviction(self):
        # Needs a recency-structured trace: under pure uniform traffic
        # LRU equals random eviction, so nothing would separate them.
        import itertools

        from repro.workloads.patterns import zipf

        trace = list(itertools.islice(zipf(400, skew=1.2, seed=4), 10_000))
        ideal = Cache(FullyAssociativeArray(64), LRU())
        rand1 = Cache(RandomCandidatesArray(64, 1, seed=3), LRU())
        for addr in trace:
            ideal.access(addr)
            rand1.access(addr)
        # Random eviction must be strictly worse than global LRU here.
        assert rand1.stats.misses > ideal.stats.misses


class TestHashSharingEquivalence:
    @given(trace=TRACE)
    @settings(max_examples=20, deadline=None)
    def test_skew_with_identical_hashes_is_set_associative(self, trace):
        # If every way uses the SAME index function, a "skew" cache
        # degenerates to a set-associative cache: same candidate sets.
        shared = make_hash_family("h3", 1, 16, seed=11)[0]
        skew = Cache(
            SkewAssociativeArray(4, 16, hashes=[shared] * 4), LRU()
        )
        sa = Cache(
            SetAssociativeArray(4, 16, index_hash=shared), LRU()
        )
        for addr in trace:
            a = skew.access(addr)
            b = sa.access(addr)
            assert a.hit == b.hit
        assert skew.stats.misses == sa.stats.misses
