"""Property-based tests: array invariants under arbitrary access patterns.

The key invariants of any cache array, exercised with hypothesis:

1. Storage consistency: the position map and the line array agree, and no
   block is stored twice.
2. Placement legality: every resident block sits at a position its hash
   functions allow.
3. Containment: after accessing address A, A is resident.
4. Conservation: blocks only leave via eviction or invalidation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Cache,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.replacement import LRU, BucketedLRU, FIFO, RandomPolicy

ADDRESSES = st.integers(min_value=0, max_value=500)
TRACE = st.lists(st.tuples(ADDRESSES, st.booleans()), min_size=1, max_size=300)


def array_cases():
    return [
        lambda: SetAssociativeArray(2, 8),
        lambda: SetAssociativeArray(4, 8, hash_kind="h3", hash_seed=1),
        lambda: SkewAssociativeArray(4, 8, hash_seed=2),
        lambda: ZCacheArray(2, 8, levels=3, hash_seed=3),
        lambda: ZCacheArray(4, 8, levels=2, hash_seed=4),
        lambda: ZCacheArray(4, 8, levels=3, repeat_filter="exact", hash_seed=5),
        lambda: ZCacheArray(3, 8, levels=2, strategy="dfs", hash_seed=6),
        lambda: FullyAssociativeArray(16),
        lambda: RandomCandidatesArray(16, 8, seed=7),
    ]


class TestInvariantsUnderTraffic:
    @given(trace=TRACE)
    @settings(max_examples=40, deadline=None)
    def test_all_arrays_stay_consistent(self, trace):
        for factory in array_cases():
            arr = factory()
            cache = Cache(arr, LRU())
            for addr, is_write in trace:
                result = cache.access(addr, is_write)
                assert addr in arr, "accessed block must be resident"
                if result.evicted is not None:
                    assert result.evicted not in arr
            arr.check_invariants()
            assert len(arr) <= arr.num_blocks

    @given(trace=TRACE, seed=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_policy_variants_consistent(self, trace, seed):
        policies = [LRU, FIFO, lambda: BucketedLRU(4, 3), lambda: RandomPolicy(seed)]
        for policy_factory in policies:
            arr = ZCacheArray(4, 8, levels=2, hash_seed=seed)
            cache = Cache(arr, policy_factory())
            for addr, is_write in trace:
                cache.access(addr, is_write)
            arr.check_invariants()

    @given(trace=TRACE)
    @settings(max_examples=30, deadline=None)
    def test_accounting_identities(self, trace):
        cache = Cache(ZCacheArray(4, 8, levels=2, hash_seed=9), LRU())
        for addr, is_write in trace:
            cache.access(addr, is_write)
        stats = cache.stats
        assert stats.accesses == stats.hits + stats.misses
        assert stats.accesses == stats.reads + stats.writes
        assert stats.misses == stats.evictions + stats.fills_empty
        assert stats.writebacks <= stats.evictions + stats.invalidations
        # Every miss writes the incoming block's data once; relocations
        # add one more data write each.
        assert stats.data_writes >= stats.misses

    @given(
        trace=TRACE,
        kill=st.lists(st.integers(0, 500), max_size=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_invalidations_interleaved(self, trace, kill):
        cache = Cache(ZCacheArray(4, 8, levels=3, hash_seed=11), LRU())
        kill_iter = iter(kill)
        for i, (addr, is_write) in enumerate(trace):
            cache.access(addr, is_write)
            if i % 5 == 4:
                target = next(kill_iter, None)
                if target is not None:
                    cache.invalidate(target)
        cache.array.check_invariants()


class TestEvictionConservation:
    @given(trace=st.lists(ADDRESSES, min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_resident_set_evolution(self, trace):
        """Track the expected resident set access by access."""
        cache = Cache(SkewAssociativeArray(2, 8, hash_seed=13), LRU())
        expected: set[int] = set()
        for addr in trace:
            result = cache.access(addr)
            expected.add(addr)
            if result.evicted is not None:
                expected.discard(result.evicted)
            assert set(cache.resident()) == expected


class TestZCacheRelocationProperty:
    @given(trace=st.lists(ADDRESSES, min_size=50, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_relocated_blocks_stay_at_legal_positions(self, trace):
        arr = ZCacheArray(3, 8, levels=3, hash_seed=17)
        cache = Cache(arr, LRU())
        for addr in trace:
            cache.access(addr)
            for resident in arr.resident():
                pos = arr.lookup(resident)
                assert pos.index == arr.hashes[pos.way](resident)
