"""Tests for the Section II baseline designs: victim and column caches."""

import random

import pytest

from repro.core import ColumnAssociativeCache, VictimCache
from repro.core.controller import Cache
from repro.core.setassoc import SetAssociativeArray
from repro.replacement import LRU


class TestVictimCache:
    def test_rejects_empty_buffer(self):
        with pytest.raises(ValueError):
            VictimCache(2, 8, victim_entries=0)

    def test_buffer_absorbs_conflict_misses(self):
        # Two conflicting addresses ping-pong in a direct-mapped main
        # array; the victim buffer turns the ping-pong into hits.
        plain = Cache(SetAssociativeArray(1, 8), LRU())
        vc = VictimCache(1, 8, victim_entries=4)
        for _ in range(50):
            for addr in (0, 8):  # same set
                plain.access(addr)
                vc.access(addr)
        assert plain.stats.miss_rate > 0.9
        assert vc.stats.miss_rate < 0.1
        assert vc.victim_stats.victim_hit_rate > 0.9

    def test_total_capacity(self):
        vc = VictimCache(2, 8, victim_entries=4)
        assert vc.num_blocks == 20

    def test_contains_covers_both_structures(self):
        vc = VictimCache(1, 4, victim_entries=2)
        vc.access(0)
        vc.access(4)  # evicts 0 into the buffer
        assert 0 in vc and 4 in vc

    def test_dirty_block_survives_round_trip(self):
        vc = VictimCache(1, 4, victim_entries=2)
        vc.access(0, is_write=True)
        vc.access(4)  # dirty 0 parks in the buffer
        assert vc.stats.writebacks == 0  # sideways move, not to memory
        vc.access(0)  # swap back
        assert vc.main.is_dirty(0)

    def test_buffer_overflow_writes_back_dirty(self):
        vc = VictimCache(1, 4, victim_entries=1)
        vc.access(0, is_write=True)
        vc.access(4)  # dirty 0 -> buffer
        vc.access(8)  # dirty?no 4 clean -> buffer, 0 displaced to memory
        assert vc.stats.writebacks == 1

    def test_poor_fit_for_many_hot_sets(self):
        # The paper's critique: a small buffer cannot absorb conflict
        # misses spread over many sets.
        vc = VictimCache(1, 64, victim_entries=4)
        rng = random.Random(0)
        for _ in range(4000):
            set_idx = rng.randrange(32)
            vc.access(set_idx + 64 * rng.randrange(2))
        assert vc.victim_stats.victim_hit_rate < 0.5

    def test_merged_stats_consistent(self):
        vc = VictimCache(2, 8, victim_entries=4)
        rng = random.Random(1)
        for _ in range(2000):
            vc.access(rng.randrange(100), is_write=rng.random() < 0.3)
        s = vc.stats
        assert s.accesses == 2000
        assert s.hits + s.misses == s.accesses


class TestColumnAssociative:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ColumnAssociativeCache(100)
        with pytest.raises(ValueError):
            ColumnAssociativeCache(1)

    def test_primary_and_secondary_differ(self):
        cc = ColumnAssociativeCache(16)
        for addr in range(64):
            assert cc.primary_index(addr) != cc.secondary_index(addr)

    def test_two_conflicting_blocks_coexist(self):
        # A direct-mapped cache ping-pongs; column-associative keeps
        # both blocks via the secondary location.
        cc = ColumnAssociativeCache(16)
        cc.access(0)
        cc.access(16)  # same primary set -> takes the secondary slot
        assert 0 in cc and 16 in cc
        assert cc.access(0) or cc.access(16)  # hits now

    def test_secondary_hit_swaps_to_primary(self):
        cc = ColumnAssociativeCache(16)
        cc.access(0)
        cc.access(16)
        before = cc.stats.second_probe_hits
        # Whichever of the two is in its secondary slot hits via the
        # second probe and gets promoted.
        cc.access(0)
        cc.access(0)
        # The second access must be a first-probe hit (swap happened).
        assert cc.stats.second_probe_hits <= before + 1
        cc.check_invariants()

    def test_variable_hit_latency_measured(self):
        cc = ColumnAssociativeCache(16)
        rng = random.Random(2)
        for _ in range(2000):
            cc.access(rng.randrange(64))
        assert 1.0 < cc.stats.mean_probes_per_access <= 2.0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            ColumnAssociativeCache(16).access(-3)

    def test_writeback_accounting(self):
        cc = ColumnAssociativeCache(4)
        cc.access(0, is_write=True)
        # Fill both locations of set 0 and force 0 out.
        cc.access(4)
        cc.access(8)
        assert cc.stats.writebacks == 1

    def test_invariants_under_traffic(self):
        cc = ColumnAssociativeCache(32)
        rng = random.Random(3)
        for _ in range(5000):
            cc.access(rng.randrange(512), is_write=rng.random() < 0.2)
        cc.check_invariants()
        assert cc.stats.hits + cc.stats.misses == cc.stats.accesses

    def test_beats_direct_mapped_on_conflicts(self):
        dm = Cache(SetAssociativeArray(1, 32), LRU())
        cc = ColumnAssociativeCache(32)
        rng = random.Random(4)
        # Hot pairs mapping to the same set.
        for _ in range(4000):
            base = rng.randrange(16)
            addr = base + 32 * rng.randrange(2)
            dm.access(addr)
            cc.access(addr)
        assert cc.stats.miss_rate < dm.stats.miss_rate
