"""Differential verification of the zcache walk.

An independent, brute-force re-implementation of the breadth-first walk
(straight from the paper's description, no shared code with the array's
incremental version) recomputes the candidate tree from the array's
observable state; hypothesis drives both against random traffic and the
trees must agree node for node. This is the strongest guard against
walk regressions: the two implementations would have to break in the
same way.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Cache, ZCacheArray
from repro.replacement import LRU


def reference_walk(array: ZCacheArray, incoming: int):
    """The paper's walk, written the naive way.

    Returns a list of (way, index, resident, level) in BFS order.
    """
    nodes = []
    frontier = []
    for way in range(array.num_ways):
        index = array.hashes[way](incoming)
        resident = array._lines[way][index]
        nodes.append((way, index, resident, 0))
        frontier.append((way, index, resident))
    for level in range(1, array.levels):
        next_frontier = []
        for way, index, resident in frontier:
            if resident is None:
                continue
            for child_way in range(array.num_ways):
                if child_way == way:
                    continue
                child_index = array.hashes[child_way](resident)
                child_resident = array._lines[child_way][child_index]
                nodes.append((child_way, child_index, child_resident, level))
                next_frontier.append((child_way, child_index, child_resident))
        frontier = next_frontier
    return nodes


@given(
    trace=st.lists(st.integers(0, 2000), min_size=30, max_size=300),
    probe=st.integers(10_000, 20_000),
    ways=st.sampled_from([2, 3, 4]),
    levels=st.sampled_from([1, 2, 3]),
)
@settings(max_examples=40, deadline=None)
def test_walk_matches_reference(trace, probe, ways, levels):
    array = ZCacheArray(ways, 16, levels=levels, hash_seed=7)
    cache = Cache(array, LRU())
    for addr in trace:
        cache.access(addr)
    if probe in array:
        probe += 100_000  # make sure the probe misses
    expected = reference_walk(array, probe)
    repl = array.build_replacement(probe)
    actual = [
        (c.position.way, c.position.index, c.address, c.level)
        for c in repl.candidates
    ]
    assert actual == expected


@given(
    trace=st.lists(st.integers(0, 500), min_size=50, max_size=300),
)
@settings(max_examples=30, deadline=None)
def test_walk_level_counts_bounded_by_formula(trace):
    array = ZCacheArray(4, 8, levels=3, hash_seed=11)
    cache = Cache(array, LRU())
    for addr in trace:
        cache.access(addr)
    repl = array.build_replacement(10**9)
    per_level: dict[int, int] = {}
    for c in repl.candidates:
        per_level[c.level] = per_level.get(c.level, 0) + 1
    # Level l holds at most W*(W-1)^l nodes (fewer when slots are free).
    for level, count in per_level.items():
        assert count <= 4 * 3**level
