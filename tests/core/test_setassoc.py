"""Tests for the set-associative array."""

import pytest

from repro.core import Cache, SetAssociativeArray
from repro.replacement import LRU


class TestPlacement:
    def test_block_lands_in_its_set(self):
        arr = SetAssociativeArray(num_ways=2, lines_per_way=16)
        cache = Cache(arr, LRU())
        cache.access(100)
        pos = arr.lookup(100)
        assert pos is not None
        assert pos.index == arr.set_index(100)

    def test_bitsel_index_is_low_bits(self):
        arr = SetAssociativeArray(2, 16)
        assert arr.set_index(0x35) == 0x5

    def test_set_fills_all_ways_before_evicting(self):
        arr = SetAssociativeArray(num_ways=4, lines_per_way=4)
        cache = Cache(arr, LRU())
        # Four conflicting addresses fill the four ways of set 0.
        for i in range(4):
            cache.access(i * 4)
        assert cache.stats.evictions == 0
        assert all(a is not None for a in arr.set_contents(0))

    def test_conflict_evicts_lru_within_set(self):
        arr = SetAssociativeArray(num_ways=2, lines_per_way=4)
        cache = Cache(arr, LRU())
        cache.access(0)  # set 0
        cache.access(4)  # set 0
        cache.access(0)  # refresh 0
        result = cache.access(8)  # set 0: evicts 4
        assert result.evicted == 4
        assert 0 in cache and 8 in cache and 4 not in cache

    def test_no_relocations_ever(self):
        arr = SetAssociativeArray(2, 8)
        cache = Cache(arr, LRU())
        for a in range(100):
            cache.access(a)
        assert cache.stats.relocations == 0

    def test_hashed_index_spreads_strides(self):
        plain = SetAssociativeArray(2, 64, hash_kind="bitsel")
        hashed = SetAssociativeArray(2, 64, hash_kind="h3", hash_seed=1)
        stride_addrs = [i * 64 for i in range(32)]
        plain_sets = {plain.set_index(a) for a in stride_addrs}
        hashed_sets = {hashed.set_index(a) for a in stride_addrs}
        assert len(plain_sets) == 1
        assert len(hashed_sets) > 16

    def test_invariants_hold_after_traffic(self):
        arr = SetAssociativeArray(4, 16, hash_kind="h3")
        cache = Cache(arr, LRU())
        import random

        rng = random.Random(0)
        for _ in range(2000):
            cache.access(rng.randrange(256))
        arr.check_invariants()

    def test_build_replacement_on_resident_block_rejected(self):
        arr = SetAssociativeArray(2, 8)
        cache = Cache(arr, LRU())
        cache.access(1)
        with pytest.raises(RuntimeError):
            arr.build_replacement(1)

    def test_tag_reads_per_replacement_equals_ways(self):
        arr = SetAssociativeArray(4, 8)
        repl = arr.build_replacement(3)
        assert repl.tag_reads == 4
        assert len(repl.candidates) == 4
        assert all(c.level == 0 for c in repl.candidates)
