"""Tests for the two-phase BFS zcache (paper Section III-D)."""

import random

import pytest

from repro.assoc import TrackedPolicy
from repro.core import Cache, TwoPhaseZCache, ZCacheArray
from repro.core.setassoc import SetAssociativeArray
from repro.replacement import LRU


def run_traffic(cache, n=30_000, footprint=4_096, seed=5):
    rng = random.Random(seed)
    for _ in range(n):
        cache.access(rng.randrange(footprint), is_write=rng.random() < 0.25)
    return cache


class TestConstruction:
    def test_requires_zcache_array(self):
        with pytest.raises(TypeError):
            TwoPhaseZCache(SetAssociativeArray(4, 64), LRU())


class TestBehaviour:
    def test_invariants_under_traffic(self):
        cache = TwoPhaseZCache(ZCacheArray(4, 128, levels=2, hash_seed=1), LRU())
        run_traffic(cache)
        cache.array.check_invariants()
        s = cache.stats
        assert s.accesses == s.hits + s.misses

    def test_second_phase_runs_and_wins_sometimes(self):
        cache = TwoPhaseZCache(ZCacheArray(4, 128, levels=2, hash_seed=1), LRU())
        run_traffic(cache)
        assert cache.second_phase_walks > 0
        assert 0 < cache.second_phase_wins <= cache.second_phase_walks

    def test_blocks_stay_at_legal_positions(self):
        arr = ZCacheArray(3, 64, levels=2, hash_seed=2)
        cache = TwoPhaseZCache(arr, LRU())
        run_traffic(cache, n=8_000, footprint=2_000)
        for addr in arr.resident():
            pos = arr.lookup(addr)
            assert pos.index == arr.hashes[pos.way](addr)

    def test_policy_and_array_stay_in_sync(self):
        tracked = TrackedPolicy(LRU())
        arr = ZCacheArray(4, 64, levels=2, hash_seed=3)
        cache = TwoPhaseZCache(arr, tracked)
        run_traffic(cache, n=10_000, footprint=2_000)
        assert set(tracked._mirror) == set(arr.resident())

    def test_improves_associativity_over_single_phase(self):
        rng = random.Random(7)
        trace = [rng.randrange(4096) for _ in range(50_000)]
        t1 = TrackedPolicy(LRU())
        single = Cache(ZCacheArray(4, 256, levels=2, hash_seed=4), t1)
        t2 = TrackedPolicy(LRU())
        double = TwoPhaseZCache(ZCacheArray(4, 256, levels=2, hash_seed=4), t2)
        for a in trace:
            single.access(a)
            double.access(a)
        assert (
            t2.distribution().effective_candidates()
            > t1.distribution().effective_candidates()
        )

    def test_extra_tag_bandwidth_accounted(self):
        single = Cache(ZCacheArray(4, 128, levels=2, hash_seed=5), LRU())
        double = TwoPhaseZCache(ZCacheArray(4, 128, levels=2, hash_seed=5), LRU())
        run_traffic(single, n=15_000)
        run_traffic(double, n=15_000)
        per_miss_single = single.stats.walk_tag_reads / single.stats.misses
        per_miss_double = double.stats.walk_tag_reads / double.stats.misses
        # Phase 2 roughly doubles walk tag traffic.
        assert per_miss_double > 1.5 * per_miss_single

    def test_accounting_identities(self):
        cache = TwoPhaseZCache(ZCacheArray(4, 64, levels=3, hash_seed=6), LRU())
        run_traffic(cache, n=12_000, footprint=3_000)
        s = cache.stats
        # Every miss ends in exactly one install; evictions can exceed
        # zero per miss (phase-2 evicts) or be zero (free-slot endings),
        # but data writes always cover the installs.
        assert s.data_writes >= s.misses
        assert s.evictions <= s.misses

    def test_dirty_victims_write_back(self):
        cache = TwoPhaseZCache(ZCacheArray(2, 16, levels=2, hash_seed=7), LRU())
        run_traffic(cache, n=5_000, footprint=500, seed=9)
        assert cache.stats.writebacks > 0
