"""Tests for workload specs and the 72-workload roster."""

import itertools

import pytest

from repro.workloads import (
    MIX_NAMES,
    PARSEC,
    SPEC2006,
    SPECOMP,
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    roster,
)
from repro.workloads.spec import CORE_ADDRESS_STRIDE, SHARED_ADDRESS_BASE


def take(it, n):
    return list(itertools.islice(it, n))


class TestRoster:
    def test_72_workloads(self):
        assert len(WORKLOADS) == 72
        assert len(roster()) == 72

    def test_suite_counts_match_paper(self):
        assert len(PARSEC) == 6
        assert len(SPECOMP) == 10
        assert len(SPEC2006) == 26
        assert len(MIX_NAMES) == 30

    def test_lookup(self):
        assert get_workload("canneal").name == "canneal"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_parsec_multithreaded_spec2006_not(self):
        assert all(w.multithreaded for w in PARSEC)
        assert all(w.multithreaded for w in SPECOMP)
        assert all(not w.multithreaded for w in SPEC2006)

    def test_mixes_draw_from_spec2006(self):
        mix = get_workload("cpu2K6rand0")
        member_names = {m.name for m in mix.members}
        spec_names = {s.name for s in SPEC2006}
        assert member_names <= spec_names
        assert len(mix.members) == 32

    def test_mixes_differ(self):
        a = [m.name for m in get_workload("cpu2K6rand0").members]
        b = [m.name for m in get_workload("cpu2K6rand1").members]
        assert a != b

    def test_describe_all(self):
        for spec in WORKLOADS.values():
            assert spec.name in spec.describe() or spec.suite == "mix"


class TestSpecValidation:
    def test_rejects_bad_mem_ratio(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                name="x", suite="t", multithreaded=False,
                mem_ratio=0.0, write_frac=0.1,
                patterns=(((1.0, {"kind": "uniform"})),),
            )

    def test_rejects_sharing_without_multithreading(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                name="x", suite="t", multithreaded=False,
                mem_ratio=0.3, write_frac=0.1,
                patterns=((1.0, {"kind": "uniform"}),),
                sharing_frac=0.5,
            )

    def test_rejects_empty_patterns(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                name="x", suite="t", multithreaded=False,
                mem_ratio=0.3, write_frac=0.1, patterns=(),
            )


class TestStreams:
    def test_deterministic(self):
        w = get_workload("mcf")
        a = take(w.core_stream(0, 4096, seed=5), 100)
        b = take(w.core_stream(0, 4096, seed=5), 100)
        assert a == b

    def test_cores_have_disjoint_private_spaces(self):
        w = get_workload("mcf")  # multiprogrammed: fully private
        a = {x.address for x in take(w.core_stream(0, 4096, seed=1), 2000)}
        b = {x.address for x in take(w.core_stream(1, 4096, seed=1), 2000)}
        assert not (a & b)
        assert all(x < CORE_ADDRESS_STRIDE for x in a)
        assert all(CORE_ADDRESS_STRIDE <= x < 2 * CORE_ADDRESS_STRIDE for x in b)

    def test_multithreaded_share_addresses(self):
        w = get_workload("streamcluster")  # sharing_frac = 0.4
        a = {x.address for x in take(w.core_stream(0, 4096, seed=1), 4000)}
        b = {x.address for x in take(w.core_stream(1, 4096, seed=1), 4000)}
        shared = {x for x in a & b if x >= SHARED_ADDRESS_BASE}
        assert shared, "multithreaded workloads must share blocks"

    def test_write_fraction_calibrated(self):
        w = get_workload("lbm")
        accs = take(w.core_stream(0, 4096, seed=2), 20_000)
        frac = sum(1 for a in accs if a.is_write) / len(accs)
        assert frac == pytest.approx(w.write_frac, abs=0.03)

    def test_mem_ratio_calibrated(self):
        w = get_workload("gcc")
        accs = take(w.core_stream(0, 4096, seed=3), 20_000)
        mean_gap = sum(a.gap for a in accs) / len(accs)
        assert mean_gap == pytest.approx(1 / w.mem_ratio - 1, rel=0.1)

    def test_mix_core_stream_uses_member(self):
        mix = get_workload("cpu2K6rand3")
        member = mix.members[5]
        mix_accs = take(mix.core_stream(5, 4096, seed=1), 50)
        member_accs = take(member.core_stream(5, 4096, seed=1), 50)
        assert mix_accs == member_accs

    def test_gaps_non_negative(self):
        for name in ("canneal", "povray", "cpu2K6rand2"):
            for acc in take(get_workload(name).core_stream(0, 4096), 500):
                assert acc.gap >= 0
