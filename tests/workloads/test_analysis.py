"""Tests for trace analysis: stack distances, reuse profiles, windows."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Cache, FullyAssociativeArray
from repro.replacement import LRU
from repro.util.fenwick import FenwickTree
from repro.workloads.analysis import (
    COLD,
    reuse_profile,
    stack_distances,
    working_set_curve,
)


class TestFenwick:
    def test_basic_sums(self):
        t = FenwickTree(8)
        t.add(0, 3)
        t.add(5, 2)
        assert t.prefix_sum(0) == 3
        assert t.prefix_sum(4) == 3
        assert t.prefix_sum(7) == 5
        assert t.range_sum(1, 5) == 2
        assert t.total() == 5

    def test_bounds_checked(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(4, 1)
        with pytest.raises(IndexError):
            t.prefix_sum(4)
        with pytest.raises(ValueError):
            FenwickTree(0)

    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(-5, 5)), max_size=60))
    @settings(max_examples=50)
    def test_matches_naive(self, updates):
        t = FenwickTree(32)
        ref = [0] * 32
        for idx, delta in updates:
            t.add(idx, delta)
            ref[idx] += delta
        for q in (0, 7, 15, 31):
            assert t.prefix_sum(q) == sum(ref[: q + 1])


class TestStackDistances:
    def test_known_sequence(self):
        # a b c a: 'a' re-referenced after {b, c} -> distance 2.
        assert stack_distances([1, 2, 3, 1]) == [COLD, COLD, COLD, 2]

    def test_immediate_rereference(self):
        assert stack_distances([5, 5]) == [COLD, 0]

    def test_repeats_do_not_inflate(self):
        # a b b a: distinct-since-a = {b} -> distance 1.
        assert stack_distances([1, 2, 2, 1]) == [COLD, COLD, 0, 1]

    def test_empty(self):
        assert stack_distances([]) == []

    @given(st.lists(st.integers(0, 20), max_size=120))
    @settings(max_examples=60)
    def test_matches_naive_definition(self, trace):
        got = stack_distances(trace)
        last: dict[int, int] = {}
        for t, addr in enumerate(trace):
            if addr in last:
                expected = len(set(trace[last[addr] + 1 : t]))
                assert got[t] == expected
            else:
                assert got[t] == COLD
            last[addr] = t


class TestReuseProfile:
    def test_miss_rate_curve_matches_simulation(self):
        # The Mattson property: the analytic curve equals a simulated
        # fully-associative LRU cache at every capacity.
        rng = random.Random(0)
        trace = [rng.randrange(60) for _ in range(4_000)]
        profile = reuse_profile(trace)
        for capacity in (4, 16, 48):
            cache = Cache(FullyAssociativeArray(capacity), LRU())
            for addr in trace:
                cache.access(addr)
            assert profile.miss_rate_at(capacity) == pytest.approx(
                cache.stats.miss_rate
            )

    def test_footprint_and_cold(self):
        profile = reuse_profile([1, 2, 3, 1, 2, 3])
        assert profile.footprint == 3
        assert profile.cold_misses == 3

    def test_curve_monotone_nonincreasing(self):
        rng = random.Random(1)
        trace = [rng.randrange(100) for _ in range(3_000)]
        curve = reuse_profile(trace).miss_rate_curve([1, 2, 4, 8, 16, 32, 64])
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_median_reuse_distance(self):
        profile = reuse_profile([1, 2, 1, 2, 1, 2])
        assert profile.median_reuse_distance() == 1.0

    def test_median_of_cold_only_trace(self):
        assert reuse_profile([1, 2, 3]).median_reuse_distance() == float("inf")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            reuse_profile([1]).miss_rate_at(-1)


class TestWorkingSetCurve:
    def test_windows(self):
        curve = working_set_curve([1, 1, 2, 3, 3, 3], window=3)
        assert curve == [2, 1]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            working_set_curve([1], window=0)

    def test_phased_workload_visible(self):
        from repro.workloads.patterns import working_set_phases
        import itertools

        trace = itertools.islice(
            working_set_phases(
                100_000, ws_fraction=0.001, phase_length=500,
                locality=1.0, seed=2,
            ),
            3_000,
        )
        curve = working_set_curve(trace, window=500)
        assert max(curve) <= 110  # each phase confined to ~100 blocks
