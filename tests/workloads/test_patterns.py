"""Tests for the access-pattern primitives."""

import itertools

import pytest

from repro.workloads import (
    interleave,
    mixed,
    pointer_chase,
    sequential_scan,
    strided,
    uniform_random,
    working_set_phases,
    zipf,
)


def take(it, n):
    return list(itertools.islice(it, n))


class TestSequential:
    def test_wraps(self):
        assert take(sequential_scan(4), 6) == [0, 1, 2, 3, 0, 1]

    def test_start_offset(self):
        assert take(sequential_scan(4, start=6), 3) == [2, 3, 0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            next(sequential_scan(0))


class TestStrided:
    def test_stride_pattern(self):
        assert take(strided(10, 3), 5) == [0, 3, 6, 9, 2]

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            next(strided(10, 0))

    def test_in_range(self):
        assert all(0 <= a < 100 for a in take(strided(100, 7), 500))


class TestUniform:
    def test_deterministic_per_seed(self):
        assert take(uniform_random(50, seed=1), 20) == take(
            uniform_random(50, seed=1), 20
        )

    def test_covers_footprint(self):
        seen = set(take(uniform_random(16, seed=2), 1000))
        assert seen == set(range(16))


class TestZipf:
    def test_skewed_popularity(self):
        sample = take(zipf(1000, skew=1.3, seed=3), 20_000)
        counts = {}
        for a in sample:
            counts[a] = counts.get(a, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # The hottest block should take a visible share of traffic.
        assert top[0] > len(sample) * 0.05
        assert all(0 <= a < 1000 for a in sample)

    def test_low_skew_flatter(self):
        hot_share = {}
        for skew in (0.6, 1.5):
            sample = take(zipf(500, skew=skew, seed=4), 10_000)
            counts = {}
            for a in sample:
                counts[a] = counts.get(a, 0) + 1
            hot_share[skew] = max(counts.values()) / len(sample)
        assert hot_share[0.6] < hot_share[1.5]

    def test_rejects_skew_one(self):
        with pytest.raises(ValueError):
            next(zipf(100, skew=1.0))


class TestWorkingSet:
    def test_phase_locality(self):
        it = working_set_phases(
            10_000, ws_fraction=0.01, phase_length=500, locality=1.0, seed=5
        )
        phase = take(it, 500)
        assert max(phase) - min(phase) <= 10_000  # wrapped window
        distinct = len(set(phase))
        assert distinct <= 100  # confined to the ~100-block window

    def test_phases_move(self):
        it = working_set_phases(
            100_000, ws_fraction=0.001, phase_length=100, locality=1.0, seed=6
        )
        p1 = set(take(it, 100))
        p2 = set(take(it, 100))
        assert len(p1 & p2) < 50

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            next(working_set_phases(100, ws_fraction=0.0))


class TestPointerChase:
    def test_visits_whole_cycle(self):
        # The successor permutation is one big cycle by construction?
        # Not guaranteed; but a chase must stay in range and be
        # deterministic per seed.
        a = take(pointer_chase(64, seed=7), 200)
        b = take(pointer_chase(64, seed=7), 200)
        assert a == b
        assert all(0 <= x < 64 for x in a)

    def test_data_dependent_sequence(self):
        # Each address determines the next: the pairs (a_i, a_{i+1})
        # must be a function.
        seq = take(pointer_chase(128, seed=8), 2000)
        mapping = {}
        for cur, nxt in zip(seq, seq[1:]):
            assert mapping.setdefault(cur, nxt) == nxt

    def test_jump_every_breaks_function(self):
        seq = take(pointer_chase(128, seed=9, jump_every=10), 2000)
        mapping = {}
        violations = 0
        for cur, nxt in zip(seq, seq[1:]):
            if mapping.setdefault(cur, nxt) != nxt:
                violations += 1
        assert violations > 0


class TestMixed:
    def test_respects_weights(self):
        it = mixed(
            [(0.9, sequential_scan(10)), (0.1, uniform_random(10_000, seed=1))],
            seed=10,
        )
        sample = take(it, 5000)
        small = sum(1 for a in sample if a < 10)
        assert 0.85 < small / len(sample) < 0.95

    def test_rejects_empty_and_bad_weights(self):
        with pytest.raises(ValueError):
            next(mixed([]))
        with pytest.raises(ValueError):
            next(mixed([(0.0, sequential_scan(4))]))


class TestInterleave:
    def test_round_robin(self):
        pairs = list(interleave([iter([1, 2]), iter([10, 20, 30])]))
        assert pairs == [(0, 1), (1, 10), (0, 2), (1, 20), (1, 30)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            next(interleave([]))
