"""Tests for the trace file format."""

import itertools

import pytest

from repro.workloads import get_workload
from repro.workloads.spec import CoreAccess
from repro.workloads.traceio import dumps_trace, load_trace, parse_trace, save_trace


def sample_accesses(n=200):
    spec = get_workload("gcc")
    return list(itertools.islice(spec.core_stream(0, 1024, seed=1), n))


class TestRoundTrip:
    def test_plain_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        accesses = sample_accesses()
        assert save_trace(path, accesses, comment="gcc core 0") == len(accesses)
        assert list(load_trace(path)) == accesses

    def test_gzip_file(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        accesses = sample_accesses()
        save_trace(path, accesses)
        assert list(load_trace(path)) == accesses
        # compressed traces must actually be gzip
        with open(path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"

    def test_dumps_parse_roundtrip(self):
        accesses = sample_accesses(50)
        text = dumps_trace(accesses)
        assert list(parse_trace(text.splitlines())) == accesses


class TestValidation:
    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            list(parse_trace(["hello world"]))

    def test_bad_rw_flag_rejected(self):
        with pytest.raises(ValueError):
            list(parse_trace(["3 1f x"]))

    def test_bad_numbers_rejected(self):
        with pytest.raises(ValueError):
            list(parse_trace(["three 1f r"]))
        with pytest.raises(ValueError):
            list(parse_trace(["-1 1f r"]))

    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", "2 ff w", "# trailing"]
        assert list(parse_trace(lines)) == [CoreAccess(2, 255, True)]

    def test_save_rejects_invalid_records(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.txt", [CoreAccess(-1, 0, False)])


class TestCommentHeaders:
    def test_multiline_comment_round_trips(self, tmp_path):
        path = tmp_path / "trace.txt"
        accesses = sample_accesses(20)
        save_trace(path, accesses, comment="gcc core 0\nseed=1")
        text = path.read_text(encoding="ascii")
        assert "# gcc core 0" in text and "# seed=1" in text
        assert list(load_trace(path)) == accesses

    def test_gzip_with_comment_round_trips(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        accesses = sample_accesses(20)
        save_trace(path, accesses, comment="compressed header")
        assert list(load_trace(path)) == accesses

    def test_version_header_always_written(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, [])
        assert path.read_text(encoding="ascii").startswith("# repro-trace v1\n")


class TestErrorPositions:
    def test_position_counts_comments_and_blanks(self):
        lines = ["# header", "", "3 1f r", "bogus"]
        with pytest.raises(ValueError, match="line 4"):
            list(parse_trace(lines))

    def test_error_reports_offending_text(self):
        with pytest.raises(ValueError, match="bogus line"):
            list(parse_trace(["bogus line"]))

    def test_load_trace_reports_file_position(self, tmp_path):
        path = tmp_path / "trace.txt"
        accesses = sample_accesses(3)
        save_trace(path, accesses, comment="hdr")
        with open(path, "a", encoding="ascii") as f:
            f.write("not a record\n")
        # 1 version line + 1 comment + 3 records -> failure is line 6
        with pytest.raises(ValueError, match="line 6"):
            list(load_trace(path))
