"""Tests for the trace file format."""

import itertools

import pytest

from repro.workloads import get_workload
from repro.workloads.spec import CoreAccess
from repro.workloads.traceio import dumps_trace, load_trace, parse_trace, save_trace


def sample_accesses(n=200):
    spec = get_workload("gcc")
    return list(itertools.islice(spec.core_stream(0, 1024, seed=1), n))


class TestRoundTrip:
    def test_plain_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        accesses = sample_accesses()
        assert save_trace(path, accesses, comment="gcc core 0") == len(accesses)
        assert list(load_trace(path)) == accesses

    def test_gzip_file(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        accesses = sample_accesses()
        save_trace(path, accesses)
        assert list(load_trace(path)) == accesses
        # compressed traces must actually be gzip
        with open(path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"

    def test_dumps_parse_roundtrip(self):
        accesses = sample_accesses(50)
        text = dumps_trace(accesses)
        assert list(parse_trace(text.splitlines())) == accesses


class TestValidation:
    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            list(parse_trace(["hello world"]))

    def test_bad_rw_flag_rejected(self):
        with pytest.raises(ValueError):
            list(parse_trace(["3 1f x"]))

    def test_bad_numbers_rejected(self):
        with pytest.raises(ValueError):
            list(parse_trace(["three 1f r"]))
        with pytest.raises(ValueError):
            list(parse_trace(["-1 1f r"]))

    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", "2 ff w", "# trailing"]
        assert list(parse_trace(lines)) == [CoreAccess(2, 255, True)]

    def test_save_rejects_invalid_records(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.txt", [CoreAccess(-1, 0, False)])
