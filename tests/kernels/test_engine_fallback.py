"""Turbo-fallback contract: gauge, one-shot warning, named reasons.

``engine="turbo"`` must always be safe to request: unsupported
configurations (victim-cache buffers, adaptive controllers, the
column-associative design) run the reference path, record an
``engine_fallback`` gauge, and warn exactly once per distinct reason —
naming the unsupported piece so a sweep's log says *why* it ran slow.
"""

import warnings

import pytest

from repro.core.adaptive import AdaptiveZCache
from repro.core.column import ColumnAssociativeCache
from repro.core.controller import Cache
from repro.core.fullyassoc import FullyAssociativeArray
from repro.core.setassoc import SetAssociativeArray
from repro.core.victim import VictimCache
from repro.core.zcache import ZCacheArray
from repro.kernels import engine as engine_mod
from repro.kernels.engine import (
    TurboFallbackWarning,
    try_build_turbo,
    try_build_turbo_explain,
)
from repro.obs import ObsContext
from repro.replacement.lru import LRU


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    """Isolate the one-shot dedup set per test."""
    saved = set(engine_mod._warned_reasons)
    engine_mod._warned_reasons.clear()
    yield
    engine_mod._warned_reasons.clear()
    engine_mod._warned_reasons.update(saved)


def test_adaptive_zcache_falls_back_with_named_reason():
    cache = AdaptiveZCache(ZCacheArray(4, 16), LRU())
    core, reason = try_build_turbo_explain(cache)
    assert core is None
    assert "AdaptiveZCache" in reason
    assert try_build_turbo(cache) is None


def test_column_associative_falls_back_with_named_reason():
    cache = ColumnAssociativeCache(64)
    core, reason = try_build_turbo_explain(cache)
    assert core is None
    assert "ColumnAssociativeCache" in reason


def test_victim_buffer_array_falls_back_with_named_reason():
    # The victim cache's fully-associative buffer is the unsupported
    # half; requesting turbo on such a cache degrades, warns, and runs.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cache = Cache(FullyAssociativeArray(8), LRU(), engine="turbo")
    assert cache.engine == "reference"
    assert cache.requested_engine == "turbo"
    fallback = [w for w in caught if w.category is TurboFallbackWarning]
    assert len(fallback) == 1
    assert "FullyAssociativeArray" in str(fallback[0].message)


def test_fallback_warning_is_one_shot_per_reason():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        Cache(FullyAssociativeArray(8), LRU(), engine="turbo")
        Cache(FullyAssociativeArray(8), LRU(), engine="turbo")
        # A different reason still gets its own (single) warning.
        pinned_host = Cache(SetAssociativeArray(4, 16), LRU())
        pinned_host.access(1)
        pinned_host.pin(1)
    with warnings.catch_warnings(record=True) as second:
        warnings.simplefilter("always")
        Cache(FullyAssociativeArray(8), LRU(), engine="turbo")
    fallback = [w for w in caught if w.category is TurboFallbackWarning]
    assert len(fallback) == 1
    assert not [w for w in second if w.category is TurboFallbackWarning]


def test_engine_fallback_gauge_records_degradation():
    obs = ObsContext()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TurboFallbackWarning)
        Cache(FullyAssociativeArray(8), LRU(), engine="turbo", obs=obs)
    assert obs.metrics.gauge("engine_fallback").value == 1
    assert obs.metrics.gauge("engine_turbo").value == 0

    obs_ok = ObsContext()
    cache = Cache(
        SetAssociativeArray(4, 16), LRU(), engine="turbo", obs=obs_ok
    )
    assert cache.engine == "turbo"
    assert obs_ok.metrics.gauge("engine_fallback").value == 0
    assert obs_ok.metrics.gauge("engine_turbo").value == 1


def test_victim_cache_runs_correctly_after_fallback():
    # The composed design never requests turbo itself; its behaviour
    # is unchanged by the fallback machinery existing.
    vc = VictimCache(4, 16, victim_entries=4)
    for address in range(200):
        vc.access(address % 96)
    assert vc.main.engine == "reference"
    assert vc.buffer.engine == "reference"
    counters = vc.stats.counters()
    assert counters["accesses"].value == 200
