"""Walk kernels must emit the reference candidate list, order included."""

import random

import numpy as np
import pytest

from repro.core.controller import Cache
from repro.core.setassoc import SetAssociativeArray
from repro.core.skew import SkewAssociativeArray
from repro.core.zcache import ZCacheArray
from repro.kernels.walk import SetWalk, ZWalk
from repro.replacement.lru import LRU


def _populate(array, seed, accesses=600, footprint=4096):
    """Fill the array through a reference-engine cache, return the cache."""
    cache = Cache(array, LRU(), name="walktest")
    rng = random.Random(seed)
    for _ in range(accesses):
        cache.access(rng.randrange(footprint))
    return cache, rng


def _tags_mirror(array):
    tags = np.full(array.num_blocks, -1, dtype=np.int64)
    for way, lines in enumerate(array._lines):
        for index, addr in enumerate(lines):
            if addr is not None:
                tags[way * array.lines_per_way + index] = addr
    return tags


def _reference_rows(array, address):
    """(slot, addr, level, parent_slot, valid) per reference candidate."""
    repl = array.build_replacement(address)
    rows = []
    for cand in repl.candidates:
        slot = cand.position.way * array.lines_per_way + cand.position.index
        if cand.parent is None:
            parent_slot = -1
        else:
            parent_slot = (
                cand.parent.position.way * array.lines_per_way
                + cand.parent.position.index
            )
        addr = -1 if cand.address is None else cand.address
        rows.append((slot, addr, cand.level, parent_slot, bool(cand.valid)))
    return rows, repl.tag_reads


def _kernel_rows(wr):
    parent_slots = np.where(wr.parents >= 0, wr.slots[wr.parents], -1)
    return (
        list(
            zip(
                wr.slots.tolist(),
                wr.addrs.tolist(),
                wr.levels.tolist(),
                parent_slots.tolist(),
                [bool(v) for v in wr.valid],
            )
        ),
        wr.tag_reads,
    )


def _assert_walks_match(array, walk, rng, misses=200, footprint=4096):
    tags = _tags_mirror(array)
    checked = 0
    while checked < misses:
        address = rng.randrange(footprint, 2 * footprint)
        if address in array._pos:
            continue
        ref_rows, ref_reads = _reference_rows(array, address)
        got_rows, got_reads = _kernel_rows(walk.collect(address, tags))
        assert got_rows == ref_rows
        assert got_reads == ref_reads
        checked += 1


@pytest.mark.parametrize("hash_kind", ["bitsel", "h3"])
def test_setwalk_matches_reference(hash_kind):
    array = SetAssociativeArray(4, 64, hash_kind=hash_kind, hash_seed=1)
    _cache, rng = _populate(array, seed=1)
    walk = SetWalk(array.num_ways, array.lines_per_way, array.index_hash)
    _assert_walks_match(array, walk, rng)


@pytest.mark.parametrize(
    "make",
    [
        lambda: SkewAssociativeArray(4, 64, hash_seed=2),
        lambda: ZCacheArray(4, 64, levels=2, hash_seed=3),
        lambda: ZCacheArray(4, 16, levels=3, hash_seed=4),
        lambda: ZCacheArray(2, 32, levels=4, hash_seed=5),
    ],
)
def test_zwalk_matches_reference(make):
    array = make()
    _cache, rng = _populate(array, seed=6)
    walk = ZWalk(array.num_ways, array.lines_per_way, array.levels, array.hashes)
    _assert_walks_match(array, walk, rng)


def test_zwalk_counts_repeats_like_reference():
    """A tiny zcache forces repeated positions; counts must agree."""
    array = ZCacheArray(4, 4, levels=3, hash_seed=7)
    _cache, rng = _populate(array, seed=7, accesses=200, footprint=64)
    walk = ZWalk(array.num_ways, array.lines_per_way, array.levels, array.hashes)
    tags = _tags_mirror(array)
    saw_repeat = False
    for _ in range(200):
        address = rng.randrange(64, 128)
        if address in array._pos:
            continue
        repl = array.build_replacement(address)
        positions = [c.position for c in repl.candidates]
        ref_repeats = len(positions) - len(set(positions))
        wr = walk.collect(address, tags)
        assert wr.repeats == ref_repeats
        saw_repeat = saw_repeat or wr.repeats > 0
    assert saw_repeat, "configuration never produced a walk repeat"
