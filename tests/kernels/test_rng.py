"""MTStream must reproduce CPython's random.Random draw-for-draw."""

import random

import pytest

from repro.kernels.rng import MTStream, RandrangePool


@pytest.mark.parametrize("seed", [0, 1, 12345])
@pytest.mark.parametrize("n", [3, 5, 100, 2048, 16384])
def test_randrange_parity(seed, n):
    ref = random.Random(seed)
    stream = MTStream(random.Random(seed))
    got = stream.randrange(n, 3000)
    assert got.tolist() == [ref.randrange(n) for _ in range(3000)]


@pytest.mark.parametrize("seed", [0, 7])
def test_uniform_parity(seed):
    ref = random.Random(seed)
    stream = MTStream(random.Random(seed))
    assert stream.uniform(2000).tolist() == [ref.random() for _ in range(2000)]


def test_mixed_draw_shapes_share_one_word_stream():
    """Interleaved randrange/uniform draws must stay in sync.

    The rejection sampler pushes unconsumed raw words back; a later
    uniform() must pick up exactly where the Python object would.
    """
    ref = random.Random(42)
    stream = MTStream(random.Random(42))
    assert stream.randrange(2048, 777).tolist() == [
        ref.randrange(2048) for _ in range(777)
    ]
    assert stream.uniform(123).tolist() == [ref.random() for _ in range(123)]
    assert stream.randrange(77, 1000).tolist() == [
        ref.randrange(77) for _ in range(1000)
    ]


def test_source_object_is_not_advanced():
    source = random.Random(5)
    before = source.getstate()
    MTStream(source).randrange(100, 50)
    assert source.getstate() == before


def test_words_equal_getrandbits():
    ref = random.Random(3)
    stream = MTStream(random.Random(3))
    assert stream.words(1000).tolist() == [
        ref.getrandbits(32) for _ in range(1000)
    ]


def test_randrange_rejects_bad_bounds():
    stream = MTStream(random.Random(0))
    with pytest.raises(ValueError):
        stream.randrange(0, 1)
    with pytest.raises(ValueError):
        stream.randrange(1 << 33, 1)


def test_pool_preserves_order_across_refills():
    ref = random.Random(9)
    pool = RandrangePool(MTStream(random.Random(9)), 512, batch=100)
    got = []
    for count in (1, 7, 64, 300, 5, 999):
        got.extend(pool.take(count).tolist())
    assert got == [ref.randrange(512) for _ in range(len(got))]
