"""Vector hash adapters must equal their scalar hashes on every address."""

import random

import numpy as np
import pytest

from repro.hashing.base import make_hash_family
from repro.hashing.bitsel import BitSelectHash
from repro.hashing.h3 import H3Hash
from repro.hashing.mixers import MixHash
from repro.kernels.h3 import (
    VectorBitSelect,
    VectorH3,
    VectorHash,
    prime_h3,
    vector_hash,
    vector_hashes,
)


def _addresses(seed, count=4000):
    rng = random.Random(seed)
    return np.array(
        [rng.randrange(1 << 40) for _ in range(count)], dtype=np.int64
    )


@pytest.mark.parametrize("seed", [0, 1, 99])
@pytest.mark.parametrize("num_lines", [16, 256, 4096])
def test_vector_h3_matches_scalar(seed, num_lines):
    scalar = H3Hash(num_lines, seed=seed)
    addrs = _addresses(seed)
    got = VectorH3(scalar).indices(addrs)
    assert got.tolist() == [scalar(int(a)) for a in addrs]


@pytest.mark.parametrize("num_lines", [8, 1024])
def test_vector_bitsel_matches_scalar(num_lines):
    scalar = BitSelectHash(num_lines)
    addrs = _addresses(3)
    got = VectorBitSelect(scalar).indices(addrs)
    assert got.tolist() == [scalar(int(a)) for a in addrs]


def test_generic_fallback_matches_scalar():
    scalar = MixHash(128, seed=5)
    addrs = _addresses(7, count=500)
    adapter = vector_hash(scalar)
    assert type(adapter) is VectorHash
    assert adapter.indices(addrs).tolist() == [scalar(int(a)) for a in addrs]


def test_vector_hash_dispatch():
    assert type(vector_hash(H3Hash(64))) is VectorH3
    assert type(vector_hash(BitSelectHash(64))) is VectorBitSelect
    family = make_hash_family("h3", 4, 64, seed=2)
    adapters = vector_hashes(family)
    assert len(adapters) == 4
    assert all(type(a) is VectorH3 for a in adapters)
    assert all(a.scalar is h for a, h in zip(adapters, family))


def test_prime_h3_fills_memo_consistently():
    primed = H3Hash(512, seed=11)
    fresh = H3Hash(512, seed=11)
    addrs = _addresses(11, count=1000)
    prime_h3(primed, addrs)
    assert [primed(int(a)) for a in addrs] == [fresh(int(a)) for a in addrs]
