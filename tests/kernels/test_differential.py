"""Property test: turbo and reference engines are bit-identical.

Hypothesis draws a random cache geometry, policy, seed and access trace;
the same trace replayed through ``engine="reference"`` and
``engine="turbo"`` must produce identical per-access results, eviction
priorities, counters, final array contents and dirty state. This is the
differential harness's fuzzing arm — ``scripts/diff_engines.py`` checks
the big fixed workloads, this covers the odd corners (tiny arrays, heavy
conflict, interleaved invalidates).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.assoc.measurement import TrackedPolicy
from repro.core.controller import Cache
from repro.core.randomcand import RandomCandidatesArray
from repro.core.setassoc import SetAssociativeArray
from repro.core.skew import SkewAssociativeArray
from repro.core.zcache import ZCacheArray
from repro.replacement.lru import FIFO, LRU
from repro.replacement.random_policy import RandomPolicy

ARRAY_KINDS = ("sa-bitsel", "sa-h3", "skew", "z", "rc")
POLICY_KINDS = ("lru", "fifo", "random")


def _build_cache(kind, ways, lines, levels, policy_kind, tracked, seed, engine):
    if kind == "sa-bitsel":
        array = SetAssociativeArray(ways, lines, hash_kind="bitsel")
    elif kind == "sa-h3":
        array = SetAssociativeArray(ways, lines, hash_kind="h3", hash_seed=seed)
    elif kind == "skew":
        array = SkewAssociativeArray(ways, lines, hash_seed=seed)
    elif kind == "z":
        array = ZCacheArray(ways, lines, levels=levels, hash_seed=seed)
    else:
        array = RandomCandidatesArray(ways * lines, num_candidates=ways, seed=seed)
    if policy_kind == "lru":
        policy = LRU()
    elif policy_kind == "fifo":
        policy = FIFO()
    else:
        policy = RandomPolicy(seed=seed + 1)
    if tracked:
        policy = TrackedPolicy(policy)
    return Cache(array, policy, engine=engine)


def _replay(cache, ops):
    log = []
    for op, address, is_write in ops:
        if op == "inv":
            log.append(("inv", address, cache.invalidate(address)))
        else:
            r = cache.access(address, is_write)
            log.append(
                (r.hit, r.evicted, r.writeback, r.relocations, r.filled_empty)
            )
    return log


def _final_state(cache):
    counters = {k: c.value for k, c in cache.stats.counters().items()}
    priorities = getattr(cache.policy, "priorities", None)
    return (
        [list(way) for way in cache.array._lines],
        sorted(cache._dirty),
        counters,
        list(priorities) if priorities is not None else None,
    )


@st.composite
def _cases(draw):
    kind = draw(st.sampled_from(ARRAY_KINDS))
    ways = draw(st.sampled_from([2, 3, 4]))
    lines = draw(st.sampled_from([4, 8, 16]))
    levels = draw(st.sampled_from([2, 3]))
    policy_kind = draw(st.sampled_from(POLICY_KINDS))
    tracked = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**16))
    footprint = draw(st.sampled_from([2, 4, 8])) * ways * lines
    n_ops = draw(st.integers(min_value=50, max_value=400))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        op = "inv" if roll < 0.05 else "acc"
        ops.append((op, rng.randrange(footprint), rng.random() < 0.3))
    return kind, ways, lines, levels, policy_kind, tracked, seed, ops


@settings(max_examples=50, deadline=None)
@given(_cases())
def test_engines_bit_identical(case):
    kind, ways, lines, levels, policy_kind, tracked, seed, ops = case
    ref = _build_cache(
        kind, ways, lines, levels, policy_kind, tracked, seed, "reference"
    )
    turbo = _build_cache(
        kind, ways, lines, levels, policy_kind, tracked, seed, "turbo"
    )
    assert turbo.engine == "turbo", "drawn configuration should be supported"
    assert _replay(ref, ops) == _replay(turbo, ops)
    assert _final_state(ref) == _final_state(turbo)


@settings(max_examples=15, deadline=None)
@given(_cases())
def test_zcache_walk_stats_identical(case):
    """Zcache-specific walk counters and commit-level histograms agree."""
    _, ways, lines, levels, policy_kind, tracked, seed, ops = case
    caches = []
    for engine in ("reference", "turbo"):
        cache = _build_cache(
            "z", ways, lines, levels, policy_kind, tracked, seed, engine
        )
        _replay(cache, ops)
        caches.append(cache)
    ref, turbo = caches
    assert turbo.engine == "turbo"
    ref_ws, turbo_ws = ref.array.stats, turbo.array.stats
    assert (
        {k: c.value for k, c in ref_ws.counters().items()},
        ref_ws.level_hist,
    ) == (
        {k: c.value for k, c in turbo_ws.counters().items()},
        turbo_ws.level_hist,
    )
