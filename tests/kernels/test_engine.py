"""Engine selection, fallback gating, and stats rebinding."""

import random

import pytest

from repro.assoc.measurement import TrackedPolicy
from repro.core.controller import Cache, CacheStats
from repro.core.randomcand import RandomCandidatesArray
from repro.core.setassoc import SetAssociativeArray
from repro.core.skew import SkewAssociativeArray
from repro.core.twophase import TwoPhaseZCache
from repro.core.zcache import ZCacheArray
from repro.kernels.engine import TurboCore, try_build_turbo
from repro.replacement.lru import FIFO, LRU
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.srrip import SRRIP


def _snapshot(cache):
    return {k: c.value for k, c in cache.stats.counters().items()}


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        Cache(SetAssociativeArray(2, 8), LRU(), engine="vroom")


@pytest.mark.parametrize(
    "make_array",
    [
        lambda: SetAssociativeArray(4, 16),
        lambda: SkewAssociativeArray(4, 16),
        lambda: ZCacheArray(4, 16, levels=2),
        lambda: RandomCandidatesArray(64, 8),
    ],
)
@pytest.mark.parametrize(
    "make_policy",
    [LRU, FIFO, RandomPolicy, lambda: TrackedPolicy(LRU())],
)
def test_supported_configs_get_turbo(make_array, make_policy):
    cache = Cache(make_array(), make_policy(), engine="turbo")
    assert cache.engine == "turbo"
    assert cache.requested_engine == "turbo"
    assert isinstance(cache._turbo, TurboCore)


def test_reference_is_default():
    cache = Cache(SetAssociativeArray(2, 8), LRU())
    assert cache.engine == "reference"
    assert cache.requested_engine == "reference"
    assert cache._turbo is None


@pytest.mark.parametrize(
    "make_cache",
    [
        # DFS walks, candidate caps and repeat filters change candidate
        # order/count — no kernel covers them.
        lambda: Cache(
            ZCacheArray(4, 16, levels=2, strategy="dfs"), LRU(), engine="turbo"
        ),
        lambda: Cache(
            ZCacheArray(4, 16, levels=2, candidate_limit=8), LRU(), engine="turbo"
        ),
        lambda: Cache(
            ZCacheArray(4, 16, levels=2, repeat_filter="bloom"),
            LRU(),
            engine="turbo",
        ),
        # Policies without a kernel.
        lambda: Cache(SetAssociativeArray(4, 16), SRRIP(), engine="turbo"),
        lambda: Cache(
            SetAssociativeArray(4, 16), TrackedPolicy(SRRIP()), engine="turbo"
        ),
        # The two-phase controller overrides the access protocol.
        lambda: TwoPhaseZCache(
            ZCacheArray(4, 16, levels=2), LRU(), engine="turbo"
        ),
    ],
)
def test_unsupported_configs_fall_back(make_cache):
    cache = make_cache()
    assert cache.requested_engine == "turbo"
    assert cache.engine == "reference"
    assert cache._turbo is None
    # The fallback still works.
    for address in range(100):
        cache.access(address)
    assert _snapshot(cache)["accesses"] == 100


def test_subclass_policies_fall_back():
    """Exact-type gating: a subclass may change scoring semantics."""

    class MyLRU(LRU):
        pass

    cache = Cache(SetAssociativeArray(4, 16), MyLRU(), engine="turbo")
    assert cache.engine == "reference"


def test_prepopulated_state_is_rejected():
    """try_build_turbo only accepts a pristine cache."""
    cache = Cache(ZCacheArray(4, 16, levels=2), LRU())
    for address in range(32):
        cache.access(address)
    assert try_build_turbo(cache) is None


def test_pin_raises_under_turbo():
    cache = Cache(ZCacheArray(4, 16, levels=2), LRU(), engine="turbo")
    cache.access(7)
    with pytest.raises(RuntimeError, match="pinning is not supported"):
        cache.pin(7)


def _run(cache, seed, count, footprint=512):
    rng = random.Random(seed)
    for _ in range(count):
        cache.access(rng.randrange(footprint), rng.random() < 0.3)


def test_stats_swap_rebinds_turbo_counters():
    """Replacing ``cache.stats`` mid-run must re-home the turbo core.

    The core caches counter refs for the hot loop; the stats-listener
    protocol is what keeps those refs live across a registry swap.
    """
    ref = Cache(ZCacheArray(4, 32, levels=2), LRU())
    turbo = Cache(ZCacheArray(4, 32, levels=2), LRU(), engine="turbo")
    assert turbo.engine == "turbo"
    for cache in (ref, turbo):
        _run(cache, seed=5, count=1500)
        cache.stats = CacheStats()
        _run(cache, seed=6, count=1500)
    after_ref, after_turbo = _snapshot(ref), _snapshot(turbo)
    assert after_turbo == after_ref
    assert after_ref["accesses"] == 1500  # only the post-swap traffic
