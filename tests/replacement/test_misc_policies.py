"""Tests for LFU, RandomPolicy and SRRIP."""

import pytest

from repro.replacement import LFU, SRRIP, RandomPolicy


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFU()
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1)
        p.on_access(1)
        p.on_access(2)
        assert p.select_victim([1, 2]) == 2

    def test_frequency_ties_broken_by_recency(self):
        p = LFU()
        p.on_insert(1)
        p.on_insert(2)  # both frequency 1; 1 touched earlier
        assert p.select_victim([1, 2]) == 1

    def test_eviction_resets_count(self):
        p = LFU()
        p.on_insert(1)
        p.on_access(1)
        p.on_evict(1)
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(2)
        assert p.select_victim([1, 2]) == 1  # count restarted at 1


class TestRandomPolicy:
    def test_deterministic_with_seed(self):
        a, b = RandomPolicy(seed=3), RandomPolicy(seed=3)
        for addr in range(10):
            a.on_insert(addr)
            b.on_insert(addr)
        assert a.select_victim(list(range(10))) == b.select_victim(list(range(10)))

    def test_roughly_uniform_victims(self):
        counts = {a: 0 for a in range(4)}
        for seed in range(400):
            p = RandomPolicy(seed=seed)
            for a in range(4):
                p.on_insert(a)
            counts[p.select_victim([0, 1, 2, 3])] += 1
        assert min(counts.values()) > 50

    def test_priority_stable_within_residency(self):
        p = RandomPolicy(seed=0)
        p.on_insert(5)
        s = p.score(5)
        p.on_access(5)
        assert p.score(5) == s


class TestSRRIP:
    def test_insert_gets_long_rrpv_hit_gets_zero(self):
        p = SRRIP(m_bits=2)
        p.on_insert(1)
        assert p.score(1)[0] == 2  # long = 2^2 - 2
        p.on_access(1)
        assert p.score(1)[0] == 0

    def test_victim_prefers_distant(self):
        p = SRRIP(m_bits=2)
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1)  # rrpv 0
        assert p.select_victim([1, 2]) == 2

    def test_aging_when_no_distant_candidate(self):
        p = SRRIP(m_bits=2)
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1)
        p.on_access(2)  # both rrpv 0
        victim = p.select_victim([1, 2])
        assert victim in (1, 2)
        # Aging bumped both candidates to the distant value.
        changed = p.drain_score_updates()
        assert set(changed) == {1, 2}
        assert p.score(1)[0] == p.rrpv_max

    def test_drain_is_one_shot(self):
        p = SRRIP()
        p.on_insert(1)
        p.on_insert(2)
        p.select_victim([1, 2])
        p.drain_score_updates()
        assert p.drain_score_updates() == []

    def test_rejects_bad_mbits(self):
        with pytest.raises(ValueError):
            SRRIP(m_bits=0)

    def test_hit_priority_protects_reused_blocks(self):
        # A block that hits repeatedly should outlive streaming blocks.
        p = SRRIP(m_bits=2)
        p.on_insert(100)
        for i in range(3):
            p.on_access(100)
            p.on_insert(i)
            victim = p.select_victim([100, i])
            assert victim == i
            p.on_evict(i)
