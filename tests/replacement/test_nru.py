"""Tests for the NRU policy."""

import pytest

from repro.replacement import NRU, make_policy


class TestNRU:
    def test_insert_marks_referenced(self):
        p = NRU()
        p.on_insert(1)
        assert p.score(1)[0] == 0  # referenced class

    def test_victim_prefers_unreferenced(self):
        p = NRU()
        p.on_insert(1)
        p.on_insert(2)
        victim = p.select_victim([1, 2])  # both referenced -> bits clear
        assert victim in (1, 2)
        assert set(p.drain_score_updates()) == {1, 2}
        # Now both unreferenced; touching 1 protects it.
        p.on_access(1)
        assert p.select_victim([1, 2]) == 2

    def test_scope_clear_reported(self):
        p = NRU()
        for a in (1, 2, 3):
            p.on_insert(a)
        p.select_victim([1, 2, 3])
        changed = p.drain_score_updates()
        assert set(changed) == {1, 2, 3}
        assert p.drain_score_updates() == []

    def test_unreferenced_class_has_higher_score(self):
        p = NRU()
        p.on_insert(1)
        p.on_insert(2)
        p.select_victim([1, 2])  # clears both bits
        p.on_access(1)
        assert p.score(2) > p.score(1)

    def test_lifecycle_errors(self):
        p = NRU()
        p.on_insert(1)
        with pytest.raises(ValueError):
            p.on_insert(1)
        with pytest.raises(KeyError):
            p.on_access(9)
        with pytest.raises(KeyError):
            p.on_evict(9)

    def test_factory_and_cache_integration(self):
        import random

        from repro.core import Cache, ZCacheArray

        cache = Cache(ZCacheArray(4, 16, levels=2, hash_seed=1), make_policy("nru"))
        rng = random.Random(0)
        for _ in range(3_000):
            cache.access(rng.randrange(400))
        cache.array.check_invariants()
        assert cache.stats.evictions > 0

    def test_tracked_nru_stays_consistent(self):
        import random

        from repro.assoc import TrackedPolicy
        from repro.core import Cache, SkewAssociativeArray

        tracked = TrackedPolicy(NRU())
        cache = Cache(SkewAssociativeArray(4, 16, hash_seed=2), tracked)
        rng = random.Random(1)
        for _ in range(3_000):
            cache.access(rng.randrange(400))
        for addr in cache.resident():
            assert tracked._mirror[addr] == (tracked.inner.score(addr), addr)
