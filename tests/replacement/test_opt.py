"""Tests for Belady's OPT policy."""

import math

import pytest

from repro.replacement import OptPolicy


def replay(policy, trace, capacity):
    """Tiny fully-associative replay helper returning the miss count."""
    resident: set[int] = set()
    misses = 0
    for addr in trace:
        if addr in resident:
            policy.on_access(addr)
        else:
            misses += 1
            if len(resident) >= capacity:
                victim = policy.select_victim(sorted(resident))
                policy.on_evict(victim)
                resident.remove(victim)
            policy.on_insert(addr)
            resident.add(addr)
    return misses


class TestIndexing:
    def test_next_use_positions(self):
        trace = [1, 2, 1, 3, 2]
        p = OptPolicy.from_trace(trace)
        p.on_insert(1)  # consumes position 0
        assert p.next_use(1) == 2
        assert p.trace_length == 5

    def test_never_referenced_again_is_inf(self):
        p = OptPolicy.from_trace([1, 2])
        p.on_insert(1)
        assert p.next_use(1) == math.inf

    def test_replay_mismatch_detected(self):
        p = OptPolicy.from_trace([1, 2, 3])
        p.on_insert(1)
        with pytest.raises(RuntimeError):
            p.on_insert(3)  # trace expects 2 here

    def test_replay_past_end_detected(self):
        p = OptPolicy.from_trace([1])
        p.on_insert(1)
        p.on_evict(1)
        with pytest.raises(RuntimeError):
            p.on_insert(1)


class TestOptimality:
    def test_belady_classic_example(self):
        # OPT on this trace with capacity 3 misses exactly 7 times
        # (computed by hand: 1,2,3 cold; 4 evicts the furthest; ...).
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        p = OptPolicy.from_trace(trace)
        misses = replay(p, trace, capacity=3)
        assert misses == 7

    def test_opt_beats_lru_on_scan(self):
        from repro.replacement import LRU

        # Cyclic scan over capacity+1 blocks: LRU misses always, OPT
        # keeps most of the working set.
        trace = [i % 5 for i in range(100)]
        opt_misses = replay(OptPolicy.from_trace(trace), trace, capacity=4)
        lru_misses = replay(LRU(), trace, capacity=4)
        assert lru_misses == 100
        assert opt_misses < 30

    def test_selects_furthest_reuse(self):
        trace = [1, 2, 3, 9, 2, 1]
        p = OptPolicy.from_trace(trace)
        p.on_insert(1)
        p.on_insert(2)
        p.on_insert(3)
        # Next uses: 1 -> position 5, 2 -> position 4, 3 -> never.
        assert p.select_victim([1, 2, 3]) == 3
        p.on_evict(3)
        assert p.select_victim([1, 2]) == 1


class TestOptimalityProperty:
    def test_opt_never_worse_than_any_policy_fully_associative(self):
        """Belady's theorem, checked empirically.

        On a fully-associative cache, OPT's miss count lower-bounds
        every other policy's, for any trace. (The property only holds
        without cross-set interference, which is why the paper calls
        OPT a heuristic for skew caches and zcaches.)
        """
        import random

        from repro.replacement import LFU, LRU, FIFO, RandomPolicy

        rng = random.Random(9)
        for trial in range(8):
            footprint = rng.randrange(10, 60)
            capacity = rng.randrange(3, 12)
            trace = [rng.randrange(footprint) for _ in range(400)]
            opt_misses = replay(
                OptPolicy.from_trace(trace), trace, capacity
            )
            for policy in (LRU(), FIFO(), LFU(), RandomPolicy(seed=trial)):
                other = replay(policy, trace, capacity)
                assert opt_misses <= other, (
                    f"OPT ({opt_misses}) beaten by "
                    f"{type(policy).__name__} ({other})"
                )
