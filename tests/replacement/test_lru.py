"""Tests for LRU, FIFO and the policy base contract."""

import pytest

from repro.replacement import FIFO, LRU, make_policy


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRU()
        for a in (1, 2, 3):
            p.on_insert(a)
        assert p.select_victim([1, 2, 3]) == 1
        p.on_access(1)
        assert p.select_victim([1, 2, 3]) == 2

    def test_scores_order_by_recency(self):
        p = LRU()
        p.on_insert(10)
        p.on_insert(20)
        assert p.score(10) > p.score(20)  # older -> higher preference

    def test_double_insert_rejected(self):
        p = LRU()
        p.on_insert(1)
        with pytest.raises(ValueError):
            p.on_insert(1)

    def test_access_nonresident_rejected(self):
        with pytest.raises(KeyError):
            LRU().on_access(99)

    def test_evict_nonresident_rejected(self):
        with pytest.raises(KeyError):
            LRU().on_evict(99)

    def test_evict_forgets_state(self):
        p = LRU()
        p.on_insert(5)
        p.on_evict(5)
        p.on_insert(5)  # re-insertable after eviction
        assert p.score(5) is not None

    def test_select_victim_empty_rejected(self):
        with pytest.raises(ValueError):
            LRU().select_victim([])

    def test_writes_count_as_use(self):
        p = LRU()
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1, is_write=True)
        assert p.select_victim([1, 2]) == 2


class TestFIFO:
    def test_access_does_not_refresh(self):
        p = FIFO()
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1)
        p.on_access(1)
        assert p.select_victim([1, 2]) == 1  # still first in

    def test_eviction_order_is_insertion_order(self):
        p = FIFO()
        for a in (7, 8, 9):
            p.on_insert(a)
        assert p.select_victim([9, 8, 7]) == 7

    def test_double_insert_rejected(self):
        p = FIFO()
        p.on_insert(3)
        with pytest.raises(ValueError):
            p.on_insert(3)


class TestFactory:
    def test_known_names(self):
        for name in ("lru", "bucketed-lru", "lfu", "fifo", "random", "srrip"):
            assert make_policy(name) is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("belady")

    def test_kwargs_forwarded(self):
        p = make_policy("bucketed-lru", timestamp_bits=4, bump_every=10)
        assert p.timestamp_bits == 4
        assert p.bump_every == 10
