"""Tests for tree pseudo-LRU and its set-ordering restriction."""

import random

import pytest

from repro.core import Cache, SetAssociativeArray, SkewAssociativeArray, ZCacheArray
from repro.replacement import LRU
from repro.replacement.plru import TreePLRU


def make(ways=4, sets=16, **kw):
    arr = SetAssociativeArray(ways, sets, **kw)
    return arr, TreePLRU(arr)


class TestBinding:
    def test_rejects_skew_and_zcache(self):
        # The paper's Section II-A point, enforced at construction.
        with pytest.raises(TypeError):
            TreePLRU(SkewAssociativeArray(4, 16))
        with pytest.raises(TypeError):
            TreePLRU(ZCacheArray(4, 16, levels=2))

    def test_rejects_non_power_of_two_ways(self):
        with pytest.raises(ValueError):
            TreePLRU(SetAssociativeArray(3, 16))
        with pytest.raises(ValueError):
            TreePLRU(SetAssociativeArray(1, 16))


class TestTreeMechanics:
    def test_untouched_set_victim_is_way_zero(self):
        _arr, plru = make()
        assert plru.victim_way(0) == 0

    def test_touch_redirects_victim(self):
        _arr, plru = make(ways=2)
        plru._touch_way(0, 0)
        assert plru.victim_way(0) == 1
        plru._touch_way(0, 1)
        assert plru.victim_way(0) == 0

    def test_eviction_order_is_permutation(self):
        _arr, plru = make(ways=8)
        rng = random.Random(0)
        for _ in range(20):
            plru._touch_way(0, rng.randrange(8))
        order = plru._eviction_order(0)
        assert sorted(order) == list(range(8))

    def test_most_recent_way_is_last_in_order(self):
        _arr, plru = make(ways=4)
        for way in (0, 1, 2, 3, 2):
            plru._touch_way(0, way)
        assert plru._eviction_order(0)[-1] == 2


class TestAsCachePolicy:
    def run_cache(self, ways=4, sets=16, n=6000, footprint=600, seed=1):
        arr = SetAssociativeArray(ways, sets, hash_kind="h3", hash_seed=seed)
        cache = Cache(arr, TreePLRU(arr))
        rng = random.Random(seed)
        for _ in range(n):
            cache.access(rng.randrange(footprint))
        arr.check_invariants()
        return cache

    def test_runs_and_evicts(self):
        cache = self.run_cache()
        assert cache.stats.evictions > 0

    def test_protects_recent_block(self):
        arr = SetAssociativeArray(2, 4)
        cache = Cache(arr, TreePLRU(arr))
        cache.access(0)  # set 0, way A
        cache.access(4)  # set 0, way B
        cache.access(0)  # touch 0 again
        result = cache.access(8)  # conflicts: must evict 4, not 0
        assert result.evicted == 4

    def test_approximates_lru_miss_rate(self):
        # PLRU should land within a few percent of true LRU on
        # recency-friendly traffic.
        import itertools

        from repro.workloads.patterns import zipf

        trace = list(itertools.islice(zipf(1200, skew=1.15, seed=2), 30_000))
        arr1 = SetAssociativeArray(4, 32, hash_kind="h3", hash_seed=3)
        plru_cache = Cache(arr1, TreePLRU(arr1))
        lru_cache = Cache(
            SetAssociativeArray(4, 32, hash_kind="h3", hash_seed=3), LRU()
        )
        for addr in trace:
            plru_cache.access(addr)
            lru_cache.access(addr)
        assert plru_cache.stats.miss_rate == pytest.approx(
            lru_cache.stats.miss_rate, rel=0.08
        )

    def test_tracked_plru_measurable(self):
        from repro.assoc import TrackedPolicy

        arr = SetAssociativeArray(4, 16, hash_kind="h3", hash_seed=4)
        tracked = TrackedPolicy(TreePLRU(arr))
        cache = Cache(arr, tracked)
        rng = random.Random(5)
        for _ in range(6_000):
            cache.access(rng.randrange(600))
        dist = tracked.distribution()
        # PLRU approximates per-set LRU: the distribution sits near x^4.
        assert dist.effective_candidates() > 2.0

    def test_multi_set_candidates_rejected(self):
        arr = SetAssociativeArray(2, 4)
        plru = TreePLRU(arr)
        cache = Cache(arr, plru)
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        with pytest.raises(ValueError):
            plru.select_victim([0, 1])
