"""Tests for bucketed LRU (paper Section III-E)."""

import pytest

from repro.replacement import BucketedLRU


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BucketedLRU(timestamp_bits=0)
        with pytest.raises(ValueError):
            BucketedLRU(bump_every=0)

    def test_for_cache_size_matches_paper(self):
        # k = 5% of cache size, n = 8 bits.
        p = BucketedLRU.for_cache_size(num_blocks=1000)
        assert p.bump_every == 50
        assert p.timestamp_bits == 8

    def test_for_cache_size_rejects_zero(self):
        with pytest.raises(ValueError):
            BucketedLRU.for_cache_size(0)

    def test_small_cache_bump_at_least_one(self):
        assert BucketedLRU.for_cache_size(4).bump_every == 1


class TestOrdering:
    def test_tracks_lru_between_wraps(self):
        p = BucketedLRU(timestamp_bits=8, bump_every=1)
        for a in (1, 2, 3):
            p.on_insert(a)
        assert p.select_victim([1, 2, 3]) == 1
        p.on_access(1)
        assert p.select_victim([1, 2, 3]) == 2

    def test_bucketing_creates_ties_resolved_arbitrarily(self):
        # With bump_every=10, blocks inserted close together share a
        # bucket; the victim is any of the shared-bucket blocks.
        p = BucketedLRU(timestamp_bits=8, bump_every=10)
        for a in range(5):
            p.on_insert(a)
        assert p.select_victim(list(range(5))) in range(5)

    def test_wrapped_age_arithmetic(self):
        p = BucketedLRU(timestamp_bits=4, bump_every=1)
        p.on_insert(1)  # stamped at counter=1
        for a in range(2, 10):
            p.on_insert(a)
        # counter is now 9; block 1 has age 8 in mod-16 arithmetic.
        assert p.wrapped_age(1) == 8

    def test_wraparound_misjudges_survivors(self):
        # A block surviving a full wrap looks recent to the hardware
        # comparison — the known artifact the paper sizes k and n to make
        # rare. With tiny parameters we can force it.
        p = BucketedLRU(timestamp_bits=2, bump_every=1)  # mod 4
        p.on_insert(100)  # stamp 1
        for a in range(4):
            p.on_insert(200 + a)  # counter wraps past 100's stamp
        # Unwrapped truth: 100 is oldest (highest eviction preference).
        truth = max((p.score(a), a) for a in [100, 200, 201, 202, 203])
        assert truth[1] == 100
        # Hardware wrapped-age view need not agree with the truth; it
        # must still pick *some* candidate without error.
        victim = p.select_victim([100, 200, 201, 202, 203])
        assert victim in (100, 200, 201, 202, 203)

    def test_score_is_unwrapped_ground_truth(self):
        p = BucketedLRU(timestamp_bits=2, bump_every=1)
        p.on_insert(1)
        for a in range(2, 12):
            p.on_insert(a)
        scores = [p.score(a) for a in range(1, 12)]
        assert scores == sorted(scores, reverse=True)  # older = higher


class TestLifecycle:
    def test_evict_forgets(self):
        p = BucketedLRU()
        p.on_insert(1)
        p.on_evict(1)
        with pytest.raises(KeyError):
            p.on_evict(1)

    def test_double_insert_rejected(self):
        p = BucketedLRU()
        p.on_insert(1)
        with pytest.raises(ValueError):
            p.on_insert(1)
