"""Shared pytest hooks for the test tree.

``--update-goldens`` regenerates the pinned JSON files under
``tests/goldens/`` instead of comparing against them; run it after an
*intentional* behaviour change, inspect the diff, and commit the new
goldens alongside the change that moved them.
"""

from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from current behaviour",
    )


@pytest.fixture
def golden(request):
    """Compare-or-record helper for golden-file tests.

    Usage: ``golden("name", payload)`` — asserts ``payload`` round-trips
    exactly against ``tests/goldens/name.json``, or rewrites the file
    when ``--update-goldens`` is given. Payloads must be JSON-native
    (floats compare after one encode/decode round-trip, so values are
    pinned to full IEEE precision via repr).
    """
    import json

    update = request.config.getoption("--update-goldens")

    def check(name: str, payload):
        path = GOLDEN_DIR / f"{name}.json"
        if update:
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            return
        if not path.exists():
            pytest.fail(
                f"golden file {path} missing; run pytest --update-goldens"
            )
        expected = json.loads(path.read_text())
        got = json.loads(json.dumps(payload))
        assert got == expected, (
            f"{name} diverged from its golden file; if the change is "
            f"intentional, regenerate with --update-goldens and commit"
        )

    return check
