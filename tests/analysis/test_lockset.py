"""Tests for the dynamic lockset sanitizer (ZRace's runtime backend)."""

import threading

import pytest

from repro.analysis.lockset import (
    LocksetSanitizer,
    instrumented_replay,
    planted_unlocked_replay,
)
from repro.analysis.sanitizer import InvariantViolation
from repro.analysis.spec import (
    INVARIANT_REGISTRY,
    SCOPE_THREAD,
    ThreadCheck,
    invariants_for,
)
from repro.serve.shard import MISS, CacheShard


# ---------------------------------------------------------------------------
# Registry wiring


def test_thread_scope_has_both_invariants():
    names = {inv.name for inv in invariants_for(SCOPE_THREAD)}
    assert names == {"lockset-discipline", "lock-order-acyclic"}


def test_lockset_discipline_fires_only_on_empty_shared_modified():
    inv = INVARIANT_REGISTRY["lockset-discipline"]
    bad = ThreadCheck(
        field="_entries", op="__setitem__", state="shared-modified",
        lockset=frozenset(), threads=2,
    )
    assert inv.check(bad) is not None
    guarded = ThreadCheck(
        field="_entries", op="__setitem__", state="shared-modified",
        lockset=frozenset({"CacheShard.lock"}), threads=2,
    )
    assert inv.check(guarded) is None
    read_only = ThreadCheck(
        field="_entries", op="get", state="shared",
        lockset=frozenset(), threads=2,
    )
    assert inv.check(read_only) is None


def test_lock_order_invariant_renders_the_cycle():
    inv = INVARIANT_REGISTRY["lock-order-acyclic"]
    detail = inv.check(ThreadCheck(cycle=("B", "A", "B")))
    assert detail is not None
    assert "B -> A -> B" in detail
    assert inv.check(ThreadCheck(field="x", state="exclusive")) is None


# ---------------------------------------------------------------------------
# Instrumentation mechanics


def _tiny_shard():
    return CacheShard(num_ways=2, lines_per_way=16, levels=2)


def test_instrumented_shard_still_serves():
    shard = _tiny_shard()
    LocksetSanitizer(shard)
    shard.put(0x10, "k", "v")
    assert shard.get(0x10) == "v"
    assert shard.get(0x999) is MISS
    assert shard.invalidate(0x10)
    assert shard.get(0x10) is MISS
    shard.check_consistency()


def test_single_threaded_traffic_stays_exclusive_and_clean():
    shard = _tiny_shard()
    san = LocksetSanitizer(shard)
    for addr in range(64):
        shard.put(addr, addr, addr)
        shard.get(addr)
    assert san.reports == []
    states = san.field_states()
    assert states["_entries"] == "exclusive"
    assert states["zcache"] == "exclusive"


def test_locked_cross_thread_writes_keep_the_lockset():
    shard = _tiny_shard()
    san = LocksetSanitizer(shard)
    shard.put(0x10, 0, 0)  # main thread becomes the first owner
    t = threading.Thread(target=shard.put, args=(0x20, 1, 1))
    t.start()
    t.join()
    assert san.reports == []
    assert san.field_states()["_entries"] == "shared-modified"


def test_unlocked_cross_thread_write_is_reported():
    shard = _tiny_shard()
    san = LocksetSanitizer(shard)

    def bare_write(val):
        shard._entries[0x30] = (val, val, None)

    bare_write(0)  # owner: main thread, no lock held
    t = threading.Thread(target=bare_write, args=(1,))
    t.start()
    t.join()
    kinds = {r.kind for r in san.reports}
    assert kinds == {"lockset-race"}
    assert any(r.field == "_entries" for r in san.reports)
    assert any("empty candidate lockset" in r.detail for r in san.reports)


def test_offlock_recency_rebind_is_reported():
    shard = _tiny_shard()
    san = LocksetSanitizer(shard)
    shard._recency = [1]  # first rebind: main thread owns the field

    def rebind():
        shard._recency = []  # second thread, no lock: empty lockset

    t = threading.Thread(target=rebind)
    t.start()
    t.join()
    assert any(
        r.field == "_recency" and r.kind == "lockset-race"
        for r in san.reports
    )


def test_recency_appends_are_sanctioned():
    shard = _tiny_shard()
    san = LocksetSanitizer(shard)
    shard.put(0x10, 0, 0)

    def read_burst():
        for _ in range(50):
            shard.get(0x10)

    pool = [threading.Thread(target=read_burst) for _ in range(2)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    # Lock-free reads and GIL-atomic appends never participate, so the
    # buffer is not even shared yet — only writers rebind it.
    assert san.reports == []


def test_strict_mode_raises_at_the_offending_access():
    shard = _tiny_shard()
    san = LocksetSanitizer(shard, strict=True)
    shard._entries[0x40] = (0, 0, None)

    caught = []

    def bare_write():
        try:
            shard._entries[0x40] = (1, 1, None)
        except InvariantViolation as exc:
            caught.append(exc)

    t = threading.Thread(target=bare_write)
    t.start()
    t.join()
    assert len(caught) == 1
    assert caught[0].kind == "lockset-race"
    assert san.reports  # the report is recorded before the raise


# ---------------------------------------------------------------------------
# Lock-order detector


def test_opposite_order_acquisitions_close_a_cycle():
    san = LocksetSanitizer(_tiny_shard())
    a = san.track_lock("A")
    b = san.track_lock("B")
    with a:
        with b:
            pass
    assert san.reports == []
    with b:
        with a:
            pass
    orders = [r for r in san.reports if r.kind == "lock-order"]
    assert len(orders) == 1
    assert "B -> A -> B" in orders[0].detail


def test_reacquiring_the_shard_lock_raises_instead_of_hanging():
    shard = _tiny_shard()
    san = LocksetSanitizer(shard)
    with shard.lock:
        with pytest.raises(InvariantViolation) as exc:
            shard.lock.acquire()
    assert exc.value.kind == "lock-order"
    assert any(r.kind == "lock-order" for r in san.reports)


# ---------------------------------------------------------------------------
# Replay drivers (the CLI/smoke entry points)


def test_instrumented_replay_of_production_shard_is_clean():
    san = instrumented_replay(ops=400, threads=3, seed=7)
    assert san.reports == []
    assert san.accesses > 0
    # Real contention reached the shared states without a report: the
    # shard lock survived every lockset intersection.
    assert san.field_states()["_entries"] == "shared-modified"
    san.shard.check_consistency()


def test_planted_unlocked_replay_is_flagged():
    san = planted_unlocked_replay(ops=400, threads=2, seed=7)
    flagged = {r.field for r in san.reports if r.kind == "lockset-race"}
    assert "_entries" in flagged or "zcache" in flagged
    assert "lockset-race" in san.summary() or san.reports
