"""Runtime invariant sanitizer tests.

Two halves, mirroring the sanitizer's promise:

- *Soundness on healthy arrays*: property-based random access streams
  through ``SanitizedArray``-wrapped caches raise nothing, and the
  wrapper is observably transparent (identical statistics to an
  unwrapped run of the same seed).
- *Sensitivity to corruption* (mutation tests): every violation class
  in ``VIOLATION_KINDS`` is deliberately injected and must be caught
  with the right ``kind``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import (
    VIOLATION_KINDS,
    InvariantViolation,
    SanitizedArray,
    make_wrapper,
    sanitize,
)
from repro.core import (
    Cache,
    Candidate,
    Position,
    RandomCandidatesArray,
    Replacement,
    ZCacheArray,
)
from repro.replacement import LRU


def run_stream(cache, seed, accesses, footprint, invalidate_every=0):
    """Drive a seeded random access stream, optionally with invalidations."""
    rng = random.Random(seed)
    for i in range(accesses):
        addr = rng.randrange(footprint)
        cache.access(addr, is_write=bool(rng.getrandbits(1)))
        if invalidate_every and i % invalidate_every == invalidate_every - 1:
            cache.invalidate(rng.randrange(footprint))


# -- soundness: healthy arrays never trip the sanitizer --------------------


class TestCleanRuns:
    @settings(max_examples=15, deadline=None)
    @given(
        ways=st.integers(min_value=2, max_value=4),
        levels=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
        strategy=st.sampled_from(["bfs", "dfs"]),
        repeat_filter=st.sampled_from([None, "exact", "bloom"]),
    )
    def test_random_streams_raise_no_violation(
        self, ways, levels, seed, strategy, repeat_filter
    ):
        array = SanitizedArray(
            ZCacheArray(
                ways,
                32,
                levels=levels,
                strategy=strategy,
                repeat_filter=repeat_filter,
                hash_seed=seed,
                seed=seed,
            ),
            seed=seed,
            deep_check_interval=16,
        )
        cache = Cache(array, LRU())
        run_stream(cache, seed, 300, footprint=4 * array.num_blocks,
                   invalidate_every=25)
        array.final_check()
        assert array.checks_run > 0
        assert array.deep_scans > 0

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_candidates_array_clean(self, n, seed):
        array = SanitizedArray(
            RandomCandidatesArray(64, n, seed=seed),
            seed=seed,
            deep_check_interval=8,
        )
        cache = Cache(array, LRU())
        run_stream(cache, seed, 300, footprint=256)
        array.final_check()

    def test_wrapper_is_transparent(self):
        """Same seed, wrapped vs bare: bit-identical statistics."""
        def build(wrap):
            array = ZCacheArray(4, 64, levels=2, hash_seed=3, seed=3)
            if wrap:
                array = SanitizedArray(array, seed=3)
            cache = Cache(array, LRU())
            run_stream(cache, 11, 2_000, footprint=512)
            return cache

        bare, wrapped = build(False), build(True)
        assert bare.stats.as_dict() == wrapped.stats.as_dict()
        assert sorted(bare.resident()) == sorted(wrapped.resident())

    def test_attribute_forwarding(self):
        inner = ZCacheArray(4, 16, levels=2)
        array = SanitizedArray(inner, seed=0)
        assert array.num_ways == 4
        assert array.levels == 2
        assert array.array is inner
        assert len(array) == 0
        assert 123 not in array
        # Writes to array-owned attributes reach the inner array (the
        # AdaptiveZCache tuning path).
        array.candidate_limit = 8
        assert inner.candidate_limit == 8

    def test_make_wrapper_and_sanitize_helpers(self):
        wrap = make_wrapper(seed=9, deep_check_interval=0)
        array = wrap(ZCacheArray(2, 8))
        assert isinstance(array, SanitizedArray)
        assert array.seed == 9
        assert isinstance(sanitize(ZCacheArray(2, 8)), SanitizedArray)


# -- sensitivity: every injected corruption must be caught -----------------


def filled_zcache(seed=0, ways=4, lines=16, levels=2):
    """A sanitized zcache populated by a short healthy stream."""
    array = SanitizedArray(
        ZCacheArray(ways, lines, levels=levels, hash_seed=seed, seed=seed),
        seed=seed,
        deep_check_interval=0,
    )
    cache = Cache(array, LRU())
    run_stream(cache, seed, 400, footprint=2 * array.num_blocks)
    assert len(array) > ways  # the stream actually filled the cache
    return array


def expect(kind):
    """Context manager asserting an InvariantViolation of ``kind``."""
    return pytest.raises(InvariantViolation, match=rf"\[{kind}\]")


class TestMutationDetection:
    def test_map_desync_wrong_position(self):
        array = filled_zcache()
        inner = array.array
        addr = next(iter(inner._pos))
        real = inner._pos[addr]
        inner._pos[addr] = Position(real.way, (real.index + 1) % inner.lines_per_way)
        with expect("map-desync"):
            array.deep_check()

    def test_map_desync_phantom_entry(self):
        array = filled_zcache()
        inner = array.array
        free = next(
            Position(w, i)
            for w in range(inner.num_ways)
            for i in range(inner.lines_per_way)
            if inner._lines[w][i] is None
        )
        inner._pos[0xDEAD_0001] = free
        with expect("map-desync"):
            array.deep_check()

    def test_duplicate_tag(self):
        array = filled_zcache()
        inner = array.array
        addr = next(iter(inner._pos))
        other_way = (inner._pos[addr].way + 1) % inner.num_ways
        inner._lines[other_way][0] = addr
        with expect("duplicate-tag"):
            array.deep_check()

    def test_hash_placement(self):
        array = filled_zcache()
        inner = array.array
        # Move a block within its way, keeping map and lines in sync, so
        # only the hash-placement invariant is broken.
        addr, pos = next(iter(inner._pos.items()))
        wrong = (inner.hashes[pos.way](addr) + 1) % inner.lines_per_way
        displaced = inner._lines[pos.way][wrong]
        if displaced is not None:
            del inner._pos[displaced]
        inner._lines[pos.way][pos.index] = None
        inner._lines[pos.way][wrong] = addr
        inner._pos[addr] = Position(pos.way, wrong)
        with expect("hash-placement"):
            array.deep_check()

    def test_conservation_lost_block(self):
        class LeakyZCache(ZCacheArray):
            """Evicts an innocent bystander on every commit."""

            def commit_replacement(self, repl, chosen):
                result = super().commit_replacement(repl, chosen)
                for addr in list(self._pos):
                    if addr != repl.incoming:
                        self.evict_address(addr)
                        break
                return result

        array = SanitizedArray(
            LeakyZCache(4, 16, levels=2), seed=0, deep_check_interval=0
        )
        cache = Cache(array, LRU())
        with expect("conservation"):
            run_stream(cache, 0, 50, footprint=256)

    def test_evict_leaving_map_entry(self):
        array = filled_zcache()
        inner = array.array
        addr = next(iter(inner._pos))

        def sticky_evict(address):
            pos = inner._pos[address]
            inner._lines[pos.way][pos.index] = None
            # deliberately forgets to drop inner._pos[address]

        inner.evict_address = sticky_evict
        with expect("map-desync"):
            array.evict_address(addr)


class TestWalkTreeMutations:
    """Hand-corrupted candidate trees fed to ``check_walk`` directly."""

    def setup_method(self):
        self.array = SanitizedArray(
            ZCacheArray(4, 16, levels=2, hash_seed=1, seed=1),
            seed=1,
            deep_check_interval=0,
        )

    def repl_with(self, *cands):
        repl = Replacement(incoming=0x999)
        repl.candidates.extend(cands)
        return repl

    def test_walk_cycle(self):
        a = Candidate(position=Position(0, 0), address=None, level=0)
        b = Candidate(position=Position(1, 0), address=None, level=1, parent=a)
        a.parent = b  # corrupt: the "root" points back down the tree
        with expect("walk-cycle"):
            self.array.check_walk(self.repl_with(b))

    def test_walk_level_gap(self):
        root = Candidate(position=Position(0, 0), address=None, level=0)
        child = Candidate(
            position=Position(1, 0), address=None, level=5, parent=root
        )
        with expect("walk-level"):
            self.array.check_walk(self.repl_with(child))

    def test_walk_nonzero_root_level(self):
        root = Candidate(position=Position(0, 0), address=None, level=3)
        with expect("walk-level"):
            self.array.check_walk(self.repl_with(root))

    def test_walk_parent_empty_slot_expanded(self):
        root = Candidate(position=Position(0, 0), address=None, level=0)
        child = Candidate(
            position=Position(1, 0), address=None, level=1, parent=root
        )
        with expect("walk-parent"):
            self.array.check_walk(self.repl_with(child))

    def test_walk_repeat_not_invalidated(self):
        root = Candidate(position=Position(0, 0), address=0x1, level=0)
        child = Candidate(
            position=Position(0, 0), address=0x1, level=1, parent=root,
            valid=True,
        )
        # Make the recorded contents real so only the repeat fires.
        self.array.array._write(Position(0, 0), 0x1)
        with expect("walk-repeat"):
            self.array.check_walk(self.repl_with(child))

    def test_walk_stale_address(self):
        ghost = Candidate(position=Position(0, 0), address=0xBEEF, level=0)
        with expect("walk-stale"):
            self.array.check_walk(self.repl_with(ghost))

    def test_walk_bounds(self):
        rogue = Candidate(position=Position(9, 0), address=None, level=0)
        with expect("walk-bounds"):
            self.array.check_walk(self.repl_with(rogue))

    def test_walk_hash_mismatch(self):
        inner = self.array.array
        want = inner.hashes[0](0x999)
        off = Candidate(
            position=Position(0, (want + 1) % inner.lines_per_way),
            address=None,
            level=0,
        )
        with expect("walk-hash"):
            self.array.check_walk(self.repl_with(off))


class TestInvariantViolation:
    def test_kind_must_be_known(self):
        with pytest.raises(ValueError, match="unknown violation kind"):
            InvariantViolation("made-up", "detail")

    def test_message_carries_seed_and_trace(self):
        exc = InvariantViolation(
            "map-desync",
            "something broke",
            seed=42,
            trace=(("build", 0x10), ("commit", 0x10)),
        )
        text = str(exc)
        assert "seed=42" in text
        assert "commit(0x10)" in text
        assert exc.kind == "map-desync"

    def test_all_kinds_constructible(self):
        for kind in VIOLATION_KINDS:
            assert InvariantViolation(kind, "x").kind == kind

    def test_violation_from_run_reports_seed(self):
        array = filled_zcache(seed=7)
        inner = array.array
        addr = next(iter(inner._pos))
        inner._pos[addr] = Position(0, 0)
        try:
            array.deep_check()
        except InvariantViolation as exc:
            assert exc.seed == 7
            assert exc.trace  # the access history is attached
        else:  # pragma: no cover
            pytest.fail("corruption was not detected")
