"""Registry-level tests for the ZSpec invariant layer.

``test_sanitizer.py`` plants concrete corruptions and checks the
runtime driver end-to-end; this file pins the *registry itself* — the
taxonomy every backend (sanitizer, deep rules, model checker) consumes
— and the parity between a raised ``InvariantViolation`` and the
registry entry that produced it.
"""

import pytest

from repro.analysis.sanitizer import InvariantViolation, SanitizedArray
from repro.analysis.sanitizer import VIOLATION_KINDS as SAN_KINDS
from repro.analysis.spec import (
    INVARIANT_REGISTRY,
    SCOPE_COMMIT,
    SCOPE_EVICT,
    SCOPE_PHASE,
    SCOPE_STATE,
    SCOPE_THREAD,
    SCOPE_WALK,
    SCOPES,
    VIOLATION_KINDS,
    StateCheck,
    default_invariants,
    invariants_for,
    register_invariant,
)
from repro.core.zcache import ZCacheArray


# ---------------------------------------------------------------------------
# Taxonomy: kinds, scopes, and coverage.


def test_every_invariant_uses_known_kind_and_scope():
    for inv in INVARIANT_REGISTRY.values():
        assert inv.kind in VIOLATION_KINDS, inv.name
        assert inv.scope in SCOPES, inv.name


def test_every_violation_kind_has_an_invariant():
    covered = {inv.kind for inv in INVARIANT_REGISTRY.values()}
    assert covered == set(VIOLATION_KINDS)


def test_every_scope_has_an_invariant():
    covered = {inv.scope for inv in INVARIANT_REGISTRY.values()}
    assert covered == set(SCOPES)


def test_registry_keys_match_invariant_names():
    for name, inv in INVARIANT_REGISTRY.items():
        assert name == inv.name
        assert inv.description


def test_sanitizer_reexports_the_same_kind_tuple():
    assert SAN_KINDS is VIOLATION_KINDS


def test_default_invariants_preserves_definition_order():
    assert default_invariants() == tuple(INVARIANT_REGISTRY.values())
    # The runtime driver's historical precedence: walk checks were
    # defined first; the thread-scope lockset contract is newest.
    scopes = [inv.scope for inv in default_invariants()]
    assert scopes[0] == SCOPE_WALK
    assert scopes[-1] == SCOPE_THREAD


def test_invariants_for_filters_by_scope():
    all_named = set(INVARIANT_REGISTRY)
    picked = set()
    for scope in SCOPES:
        subset = invariants_for(scope)
        assert subset, scope  # every scope is non-empty
        assert all(inv.scope == scope for inv in subset)
        picked.update(inv.name for inv in subset)
    assert picked == all_named


def test_invariants_for_rejects_unknown_scope():
    with pytest.raises(ValueError, match="unknown invariant scope"):
        invariants_for("nonsense")


# ---------------------------------------------------------------------------
# Registration guards.


def test_register_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown violation kind"):
        register_invariant("bad", "no-such-kind", SCOPE_STATE, "x")
    assert "bad" not in INVARIANT_REGISTRY


def test_register_rejects_unknown_scope():
    with pytest.raises(ValueError, match="unknown invariant scope"):
        register_invariant("bad", "map-desync", "no-such-scope", "x")
    assert "bad" not in INVARIANT_REGISTRY


def test_register_rejects_duplicate_name():
    deco = register_invariant(
        "state-tag-unique", "duplicate-tag", SCOPE_STATE, "clash"
    )
    with pytest.raises(ValueError, match="duplicate invariant name"):
        deco(lambda ctx: None)


# ---------------------------------------------------------------------------
# Spec <-> sanitizer parity: a violation raised by the runtime driver
# must name a registered invariant whose kind matches the exception's.


def _corrupted_sanitized_array():
    array = ZCacheArray(2, 4, levels=2, hash_kind="h3", hash_seed=3)
    wrapped = SanitizedArray(array, deep_check_interval=0)
    for addr in (0x10, 0x20, 0x30):
        repl = array.build_replacement(addr)
        array.commit_replacement(repl, repl.candidates[0])
    # Desynchronize the map: point one resident block somewhere else.
    addr = next(iter(array._pos))
    pos = array._pos[addr]
    array._pos[addr] = type(pos)(pos.way, (pos.index + 1) % 4)
    return wrapped


def test_violation_names_registered_invariant_with_matching_kind():
    wrapped = _corrupted_sanitized_array()
    with pytest.raises(InvariantViolation) as exc:
        wrapped.final_check()
    violation = exc.value
    assert violation.invariant in INVARIANT_REGISTRY
    registered = INVARIANT_REGISTRY[violation.invariant]
    assert violation.kind == registered.kind
    assert registered.scope == SCOPE_STATE


def test_direct_registry_check_agrees_with_sanitizer():
    # Evaluating the named invariant's predicate directly on the bare
    # array reproduces the same detail string the sanitizer raised.
    wrapped = _corrupted_sanitized_array()
    with pytest.raises(InvariantViolation) as exc:
        wrapped.final_check()
    inv = INVARIANT_REGISTRY[exc.value.invariant]
    assert inv.check(StateCheck(wrapped.array)) == exc.value.detail


def test_clean_array_passes_every_state_invariant():
    array = ZCacheArray(2, 4, levels=2, hash_kind="h3", hash_seed=3)
    for addr in (0x10, 0x20, 0x30):
        repl = array.build_replacement(addr)
        array.commit_replacement(repl, repl.candidates[0])
    ctx = StateCheck(array)
    for inv in invariants_for(SCOPE_STATE):
        assert inv.check(ctx) is None, inv.name


def test_commit_and_evict_scopes_are_driver_only():
    # The model checker consumes only state-scope invariants between
    # transitions; commit/evict/walk/phase scopes need per-operation
    # context only the runtime driver can build, and the thread scope
    # is evaluated by the dynamic lockset backend. Pin the split so a
    # future scope addition makes an explicit decision here.
    driver_only = {
        SCOPE_WALK,
        SCOPE_COMMIT,
        SCOPE_EVICT,
        SCOPE_PHASE,
        SCOPE_THREAD,
    }
    assert driver_only | {SCOPE_STATE} == set(SCOPES)
