"""Before/after tests for ``lint --fix`` (the ZSan autofixer).

Each case pins the exact rewritten text, because the fixer's contract
is minimal edits: untouched lines survive byte-for-byte, comments and
formatting included. Idempotency is asserted throughout — fixing fixed
text changes nothing.
"""

from pathlib import Path

from repro.analysis.lint import FIXABLE_CODES, LintEngine, fix_paths, fix_text
from repro.cli import main as cli_main

# ZS004 only applies under core/; route dataclass cases through a
# matching fake path.
CORE = Path("src/repro/core/scratch.py")
ELSEWHERE = Path("src/repro/experiments/scratch.py")


def test_fixable_codes_are_the_documented_pair():
    assert FIXABLE_CODES == {"ZS001", "ZS004"}


# ---------------------------------------------------------------------------
# ZS004: slots=True insertion


def test_bare_dataclass_gains_call_form():
    before = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Point:\n"
        "    x: int\n"
    )
    after, result = fix_text(before, CORE)
    assert "@dataclass(slots=True)" in after
    assert result.fixes == 1
    assert result.codes == {"ZS004"}


def test_call_form_appends_after_existing_kwargs():
    before = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class Point:\n"
        "    x: int\n"
    )
    after, _ = fix_text(before, CORE)
    assert "@dataclass(frozen=True, slots=True)" in after


def test_empty_parens_get_no_leading_comma():
    before = (
        "from dataclasses import dataclass\n"
        "@dataclass()\n"
        "class Point:\n"
        "    x: int\n"
    )
    after, _ = fix_text(before, CORE)
    assert "@dataclass(slots=True)" in after


def test_trailing_comma_call_form():
    before = (
        "from dataclasses import dataclass\n"
        "@dataclass(\n"
        "    frozen=True,\n"
        ")\n"
        "class Point:\n"
        "    x: int\n"
    )
    after, _ = fix_text(before, CORE)
    assert "slots=True" in after
    assert ",, " not in after and ", ," not in after
    # Still parses and still lints clean for ZS004.
    findings = LintEngine().lint_text(after, CORE)
    assert not [f for f in findings if f.code == "ZS004"]


def test_already_slotted_dataclass_untouched():
    before = (
        "from dataclasses import dataclass\n"
        "@dataclass(slots=True)\n"
        "class Point:\n"
        "    x: int\n"
    )
    after, result = fix_text(before, CORE)
    assert after == before
    assert not result.changed


def test_suppressed_dataclass_untouched():
    before = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Point:  # zsan: ignore[ZS004]\n"
        "    x: int\n"
    )
    after, result = fix_text(before, CORE)
    assert after == before
    assert not result.changed


def test_dataclass_outside_core_untouched():
    before = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Point:\n"
        "    x: int\n"
    )
    after, result = fix_text(before, ELSEWHERE)
    assert after == before
    assert not result.changed


# ---------------------------------------------------------------------------
# ZS001: from-random import rewrite


def test_unsafe_from_random_rewritten_to_random():
    before = "from random import randint\n"
    after, result = fix_text(before, ELSEWHERE)
    assert after == "from random import Random\n"
    assert result.codes == {"ZS001"}


def test_safe_names_and_asnames_kept():
    before = "from random import randint, SystemRandom as SR, Random\n"
    after, _ = fix_text(before, ELSEWHERE)
    assert after == "from random import SystemRandom as SR, Random\n"


def test_safe_only_import_untouched():
    before = "from random import Random, SystemRandom\n"
    after, result = fix_text(before, ELSEWHERE)
    assert after == before
    assert not result.changed


def test_suppressed_import_untouched():
    before = "from random import randint  # zsan: ignore[ZS001]\n"
    after, result = fix_text(before, ELSEWHERE)
    assert after == before
    assert not result.changed


def test_surrounding_lines_survive_byte_for_byte():
    before = (
        "# header comment\n"
        "import os\n"
        "from random import shuffle\n"
        "\n"
        "X = 1  # trailing\n"
    )
    after, _ = fix_text(before, ELSEWHERE)
    assert after == (
        "# header comment\n"
        "import os\n"
        "from random import Random\n"
        "\n"
        "X = 1  # trailing\n"
    )


# ---------------------------------------------------------------------------
# General contracts


def test_fix_is_idempotent():
    before = (
        "from dataclasses import dataclass\n"
        "from random import randint\n"
        "@dataclass\n"
        "class Point:\n"
        "    x: int\n"
    )
    once, first = fix_text(before, CORE)
    twice, second = fix_text(once, CORE)
    assert first.fixes == 2
    assert twice == once
    assert not second.changed


def test_unparsable_source_returned_untouched():
    before = "def broken(:\n"
    after, result = fix_text(before, CORE)
    assert after == before
    assert not result.changed


def test_fix_paths_rewrites_only_changed_files(tmp_path):
    core = tmp_path / "core"
    core.mkdir()
    dirty = core / "dirty.py"
    dirty.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class P:\n"
        "    x: int\n",
        encoding="utf-8",
    )
    clean = core / "clean.py"
    clean_text = "VALUE = 1\n"
    clean.write_text(clean_text, encoding="utf-8")

    results = fix_paths([tmp_path])
    assert [Path(r.path).name for r in results] == ["dirty.py"]
    assert "@dataclass(slots=True)" in dirty.read_text(encoding="utf-8")
    assert clean.read_text(encoding="utf-8") == clean_text


def test_cli_fix_repairs_then_reports_clean(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("from random import randrange\n", encoding="utf-8")
    assert cli_main(["lint", "--fix", str(target)]) == 0
    captured = capsys.readouterr()
    assert "fixed 1 issue" in captured.err
    assert "ZS001" in captured.err
    assert target.read_text(encoding="utf-8") == "from random import Random\n"

    # Second run: nothing left to fix, still clean.
    assert cli_main(["lint", "--fix", str(target)]) == 0
    assert "fixed" not in capsys.readouterr().err
