"""Fixture tests for the ZProve deep rules (ZS101-ZS104).

Each rule has a flagged fixture and a clean twin under
``fixtures/deep/``; the flagged fixtures pin exact line numbers so a
rule that drifts (new false positive, lost true positive) fails loudly.
The acceptance tests plant real regressions into scratch copies of
production modules — a nondeterministic seed in the sweep engine, a
dropped counter fold in the metrics registry — and require the rules to
catch them.
"""

from pathlib import Path

import pytest

from repro.analysis.semantic import (
    DEEP_RULE_REGISTRY,
    DeepRule,
    default_deep_rules,
    register_deep_rule,
    run_deep,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "deep"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def deep_findings(path, code):
    report, _ = run_deep([path], select=[code], use_cache=False)
    return [f for f in report.findings if f.code == code]


# ---------------------------------------------------------------------------
# Registry


def test_default_rules_cover_all_thirteen_codes():
    codes = [r.code for r in default_deep_rules()]
    assert codes == [
        "ZS101", "ZS102", "ZS103", "ZS104",
        "ZS105", "ZS106", "ZS107", "ZS108", "ZS109",
        "ZS110", "ZS111", "ZS112", "ZS113",
    ]


def test_registry_rejects_shallow_code_range():
    with pytest.raises(ValueError, match="ZS1xx"):

        @register_deep_rule
        class Bad(DeepRule):  # pragma: no cover - rejected at decoration
            code = "ZS007"
            name = "bad"
            summary = "bad"

            def check_module(self, model, module):
                return []

    assert "ZS007" not in DEEP_RULE_REGISTRY


def test_registry_rejects_duplicate_code():
    with pytest.raises(ValueError, match="duplicate"):

        @register_deep_rule
        class Clash(DeepRule):  # pragma: no cover - rejected at decoration
            code = "ZS101"
            name = "clash"
            summary = "clash"

            def check_module(self, model, module):
                return []


def test_run_deep_rejects_unknown_select_code():
    with pytest.raises(ValueError, match="ZS999"):
        run_deep([FIXTURES / "zs101_clean.py"], select=["ZS999"])


# ---------------------------------------------------------------------------
# Fixture pins: (fixture, code, expected lines); clean twins pin zero.

FLAGGED = [
    ("zs101_seed_provenance.py", "ZS101", [14, 18, 22, 26, 35, 43]),
    ("zs102_parallel_safety.py", "ZS102", [11, 16, 21, 27, 37, 39, 40]),
    ("zs103_merge_completeness.py", "ZS103", [44, 58, 58, 62]),
    ("core/zs104_hidden_state.py", "ZS104", [3, 4, 5, 6]),
    ("zs105_walk_mutation.py", "ZS105", [12, 15, 20, 26]),
    ("core/zs106_raise_after_mutation.py", "ZS106", [8, 14]),
    ("zs107_fold_parity.py", "ZS107", [27]),
    ("core/zs108_raw_rng.py", "ZS108", [10, 14, 18]),
    ("core/zs109_span_discipline.py", "ZS109", [5, 6, 11, 18, 23]),
]

CLEAN = [
    ("zs101_clean.py", "ZS101"),
    ("zs102_clean.py", "ZS102"),
    ("zs103_clean.py", "ZS103"),
    ("core/zs104_clean.py", "ZS104"),
    ("zs105_clean.py", "ZS105"),
    ("core/zs106_clean.py", "ZS106"),
    ("zs107_clean.py", "ZS107"),
    ("core/zs108_clean.py", "ZS108"),
    ("core/zs109_clean.py", "ZS109"),
]


@pytest.mark.parametrize("rel,code,lines", FLAGGED)
def test_flagged_fixture_pins_lines(rel, code, lines):
    findings = deep_findings(FIXTURES / rel, code)
    assert [f.line for f in findings] == lines, "\n".join(
        f.render() for f in findings
    )
    assert all(f.code == code for f in findings)


@pytest.mark.parametrize("rel,code", CLEAN)
def test_clean_twin_has_no_findings(rel, code):
    findings = deep_findings(FIXTURES / rel, code)
    assert not findings, "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# Per-rule semantics worth asserting beyond the line pins.


def test_zs101_labels_each_taint():
    findings = deep_findings(
        FIXTURES / "zs101_seed_provenance.py", "ZS101"
    )
    messages = "\n".join(f.message for f in findings)
    assert "taint:wall-clock" in messages
    assert "taint:object-identity" in messages
    assert "taint:salted-hash" in messages
    assert "constant" in messages.lower()


def test_zs102_cross_module_finding_lands_in_helper():
    # helper_mutates is only *reached* from the dispatched worker; the
    # finding anchors at the mutation site, not the submit() call.
    findings = deep_findings(
        FIXTURES / "zs102_parallel_safety.py", "ZS102"
    )
    by_line = {f.line: f.message for f in findings}
    assert "CACHE" in by_line[16]


def test_zs103_names_the_dropped_metrics():
    findings = deep_findings(
        FIXTURES / "zs103_merge_completeness.py", "ZS103"
    )
    messages = "\n".join(f.message for f in findings)
    assert "gauge" in messages
    assert "misses" in messages
    assert "_depth" in messages
    assert "_levels" in messages


# ---------------------------------------------------------------------------
# Suppression: every deep rule honours `# zsan: ignore[CODE]` at the
# flagged line (fixtures already carry one suppressed site for ZS101
# and ZS104; ZS102/ZS103 are exercised via patched copies).


def test_zs101_suppressed_site_not_reported():
    findings = deep_findings(
        FIXTURES / "zs101_seed_provenance.py", "ZS101"
    )
    assert 47 not in [f.line for f in findings]


def test_zs104_suppressed_global_not_reported():
    findings = deep_findings(
        FIXTURES / "core" / "zs104_hidden_state.py", "ZS104"
    )
    assert 7 not in [f.line for f in findings]


def _suppress_line(text, lineno, code):
    lines = text.splitlines()
    lines[lineno - 1] = lines[lineno - 1].rstrip() + f"  # zsan: ignore[{code}]"
    return "\n".join(lines) + "\n"


def test_zs102_suppression_honoured(tmp_path):
    original = (FIXTURES / "zs102_parallel_safety.py").read_text(
        encoding="utf-8"
    )
    scratch = tmp_path / "zs102_suppressed.py"
    scratch.write_text(
        _suppress_line(original, 11, "ZS102"), encoding="utf-8"
    )
    findings = deep_findings(scratch, "ZS102")
    assert [f.line for f in findings] == [16, 21, 27, 37, 39, 40]


def test_zs103_suppression_honoured(tmp_path):
    original = (FIXTURES / "zs103_merge_completeness.py").read_text(
        encoding="utf-8"
    )
    scratch = tmp_path / "zs103_suppressed.py"
    scratch.write_text(
        _suppress_line(original, 44, "ZS103"), encoding="utf-8"
    )
    findings = deep_findings(scratch, "ZS103")
    assert [f.line for f in findings] == [58, 58, 62]


# ---------------------------------------------------------------------------
# Acceptance: plant real regressions into scratch copies of production
# modules and require the deep rules to catch them.


def test_zs101_catches_identity_seed_planted_in_parallel(tmp_path):
    source = SRC / "experiments" / "parallel.py"
    text = source.read_text(encoding="utf-8")
    assert "seed=derive_job_seed(" in text  # the sanctioned derivation
    planted = text.replace("seed=derive_job_seed(", "seed=id(", 1)
    scratch = tmp_path / "parallel_scratch.py"
    scratch.write_text(planted, encoding="utf-8")

    findings = deep_findings(scratch, "ZS101")
    assert findings, "planted id()-seed was not caught"
    assert any("taint:object-identity" in f.message for f in findings)


def test_zs101_passes_unmodified_parallel(tmp_path):
    source = SRC / "experiments" / "parallel.py"
    scratch = tmp_path / "parallel_copy.py"
    scratch.write_text(source.read_text(encoding="utf-8"), encoding="utf-8")
    assert not deep_findings(scratch, "ZS101")


def test_zs103_catches_removed_counter_fold(tmp_path):
    source = SRC / "obs" / "metrics.py"
    text = source.read_text(encoding="utf-8")
    assert "self.counter(name).value += value" in text
    planted = text.replace("self.counter(name).value += value", "pass", 1)
    scratch = tmp_path / "metrics_scratch.py"
    scratch.write_text(planted, encoding="utf-8")

    findings = deep_findings(scratch, "ZS103")
    assert findings, "removed counter fold was not caught"
    assert any("counter" in f.message.lower() for f in findings)


def test_zs103_passes_unmodified_metrics(tmp_path):
    source = SRC / "obs" / "metrics.py"
    scratch = tmp_path / "metrics_copy.py"
    scratch.write_text(source.read_text(encoding="utf-8"), encoding="utf-8")
    assert not deep_findings(scratch, "ZS103")


# ---------------------------------------------------------------------------
# Satellite regression: the bootstrap ZS101 findings in conflict.py were
# fixed by threading a seed parameter; the defaults must reproduce the
# historical hash seeds bit-for-bit so published goldens stay valid.


def test_conflict_designs_defaults_preserve_historical_seeds():
    from repro.experiments.conflict import _designs

    def h3_seeds(designs):
        seeds = {}
        for label, _ways, factory in designs:
            arr = factory()
            hashes = getattr(arr, "hashes", None) or [
                getattr(arr, "index_hash", None)
            ]
            first = hashes[0]
            if hasattr(first, "seed"):
                seeds[label] = first.seed
        return seeds

    default = h3_seeds(_designs())
    # H3Hash derives per-bank seeds from the design's hash_seed; these
    # exact values are what hash_seed=1..4 produced before the fix.
    assert default["SA-4h"] == 1000003
    assert default["SK-4"] == 2000006
    assert default["Z4/16"] == 3000009
    assert default["Z4/52"] == 4000012
    assert h3_seeds(_designs(seed=0)) == default
    shifted = h3_seeds(_designs(seed=10))
    assert all(shifted[k] != default[k] for k in default)


def test_conflict_module_is_deep_clean():
    findings = deep_findings(SRC / "experiments" / "conflict.py", "ZS101")
    assert not findings, "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# Effect rules (ZS105-ZS108): semantics beyond the line pins, plus the
# fold-parity acceptance test against a scratch copy of the real tree.


def test_zs106_atomic_marker_exempts_function(tmp_path):
    flagged = tmp_path / "core"
    flagged.mkdir()
    target = flagged / "marked.py"
    target.write_text(
        "class A:\n"
        "    def torn(self, a):  # zspec: atomic\n"
        "        self._pos[a] = 0\n"
        "        raise RuntimeError(a)\n",
        encoding="utf-8",
    )
    assert not deep_findings(target, "ZS106")


def test_zs106_scope_is_core_and_kernels_only(tmp_path):
    body = (
        "class A:\n"
        "    def torn(self, a):\n"
        "        self._pos[a] = 0\n"
        "        raise RuntimeError(a)\n"
    )
    outside = tmp_path / "elsewhere"
    outside.mkdir()
    (outside / "torn.py").write_text(body, encoding="utf-8")
    assert not deep_findings(outside / "torn.py", "ZS106")
    inside = tmp_path / "kernels"
    inside.mkdir()
    (inside / "torn.py").write_text(body, encoding="utf-8")
    assert [f.line for f in deep_findings(inside / "torn.py", "ZS106")] == [4]


def test_zs108_self_rooted_draws_are_sanctioned(tmp_path):
    core = tmp_path / "core"
    core.mkdir()
    target = core / "streams.py"
    target.write_text(
        "import random\n"
        "class K:\n"
        "    def __init__(self, seed):\n"
        "        self._rng = random.Random(seed)\n"
        "    def pick(self, n):\n"
        "        return self._rng.randrange(n)\n",
        encoding="utf-8",
    )
    assert not deep_findings(target, "ZS108")


def _scratch_tree(tmp_path):
    """Copy src/repro into a scratch dir for whole-tree acceptance runs."""
    import shutil

    scratch = tmp_path / "repro"
    shutil.copytree(SRC, scratch)
    return scratch


def test_zs107_catches_removed_turbo_counter_fold(tmp_path):
    from repro.analysis.semantic.effects import EngineFoldParityRule

    scratch = _scratch_tree(tmp_path)
    engine = scratch / "kernels" / "engine.py"
    text = engine.read_text(encoding="utf-8")
    folds = [
        line for line in text.splitlines()
        if "_c_candidates.value +=" in line
    ]
    assert len(folds) == 1  # unique fold: removing it must break parity
    engine.write_text(text.replace(folds[0] + "\n", ""), encoding="utf-8")

    report, _ = run_deep([scratch], rules=[EngineFoldParityRule()])
    findings = [f for f in report.findings if f.code == "ZS107"]
    assert findings, "removed turbo counter fold was not caught"
    assert any("candidates" in f.message for f in findings)
    assert all(f.path.endswith("engine.py") for f in findings)


def test_zs107_passes_unmodified_tree(tmp_path):
    from repro.analysis.semantic.effects import EngineFoldParityRule

    scratch = _scratch_tree(tmp_path)
    report, _ = run_deep([scratch], rules=[EngineFoldParityRule()])
    assert not [f for f in report.findings if f.code == "ZS107"]


def test_zs105_catches_mutation_planted_in_zcache_walk(tmp_path):
    from repro.analysis.semantic.effects import TwoPhasePurityRule

    scratch = _scratch_tree(tmp_path)
    zcache = scratch / "core" / "zcache.py"
    text = zcache.read_text(encoding="utf-8")
    anchor = "    def build_replacement(self, address: int) -> Replacement:\n"
    assert anchor in text
    planted = text.replace(
        anchor, anchor + "        self._pos.pop(address, None)\n", 1
    )
    zcache.write_text(planted, encoding="utf-8")

    report, _ = run_deep([scratch], rules=[TwoPhasePurityRule()])
    findings = [f for f in report.findings if f.code == "ZS105"]
    assert findings, "planted walk-phase mutation was not caught"
    assert any("build_replacement" in f.message for f in findings)
