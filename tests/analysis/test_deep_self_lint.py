"""Deep self-lint: src/repro must stay clean under the ZProve rules.

Same deal as the per-file self-lint — ZS101-ZS108 only have teeth if
the tree is pinned at zero deep findings. Also covers the CLI surface
of ``lint --deep``: the stats line, rule listing, cache flags, select
interaction, and the unknown-code exit.
"""

from pathlib import Path

from repro.analysis.semantic import run_deep
from repro.cli import main as cli_main

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_is_deep_clean():
    report, stats = run_deep([SRC], use_cache=False)
    assert report.files_checked > 50
    assert stats.modules_total > 50
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"src/repro has deep findings:\n{rendered}"


def test_cli_deep_exits_zero_on_source_tree(tmp_path, capsys):
    cache = tmp_path / "cache.json"
    assert (
        cli_main(["lint", "--deep", "--cache", str(cache), str(SRC)]) == 0
    )
    captured = capsys.readouterr()
    assert "clean" in captured.out
    assert "zprove:" in captured.err

    # Warm run: every module served from cache.
    assert (
        cli_main(["lint", "--deep", "--cache", str(cache), str(SRC)]) == 0
    )
    err = capsys.readouterr().err
    assert "0 analyzed" in err
    assert "from cache" in err


def test_cli_no_cache_never_writes_the_cache_file(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("X = 1\n", encoding="utf-8")
    cache = tmp_path / "cache.json"
    assert (
        cli_main(
            [
                "lint",
                "--deep",
                "--no-cache",
                "--cache",
                str(cache),
                str(target),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert not cache.exists()


def test_cli_rules_listing_includes_deep_codes(capsys):
    assert cli_main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "ZS101", "ZS102", "ZS103", "ZS104",
        "ZS105", "ZS106", "ZS107", "ZS108",
    ):
        assert code in out
    assert "[deep]" in out


def test_cli_unknown_code_is_a_usage_error(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("X = 1\n", encoding="utf-8")
    assert cli_main(["lint", "--select", "ZS999", str(target)]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_selecting_deep_code_runs_deep_pass(tmp_path, capsys):
    fixture = (
        Path(__file__).resolve().parent
        / "fixtures"
        / "deep"
        / "zs101_seed_provenance.py"
    )
    # Selecting ZS101 without --deep still triggers the deep pass, and
    # only ZS101 findings come back.
    code = cli_main(
        ["lint", "--select", "ZS101", "--no-cache", str(fixture)]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "ZS101" in captured.out
    assert "ZS001" not in captured.out  # fixture imports `random` bare


def test_cli_shallow_select_skips_deep_pass(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("X = 1\n", encoding="utf-8")
    assert (
        cli_main(["lint", "--deep", "--select", "ZS004", str(target)]) == 0
    )
    # A shallow-only selection under --deep must not run ZProve.
    assert "zprove:" not in capsys.readouterr().err
