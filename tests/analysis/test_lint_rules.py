"""Per-rule tests: each fixture trips its rule, clean variants do not.

The fixture files under ``tests/analysis/fixtures/`` are intentionally
violating (the acceptance contract is that ``zcache-repro lint`` exits
non-zero with the right code on every one of them); the negative and
suppression cases live inline as strings so the fixtures directory
stays all-positive.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import LintEngine
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the code it must raise
FIXTURE_CODES = {
    "zs001_unseeded_random.py": "ZS001",
    "zs002_float_equality.py": "ZS002",
    "zs003_policy_contract.py": "ZS003",
    "core/zs004_dataclass_slots.py": "ZS004",
    "zs005_wall_clock.py": "ZS005",
    "core/zs006_counter_bypass.py": "ZS006",
    "kernels/zs006_counter_fold.py": "ZS006",
}


def lint(text: str, path: str = "x.py") -> set[str]:
    """Codes found in an inline snippet."""
    return {f.code for f in LintEngine().lint_text(text, path)}


class TestFixtures:
    @pytest.mark.parametrize("rel,code", sorted(FIXTURE_CODES.items()))
    def test_fixture_trips_its_rule(self, rel, code):
        findings = LintEngine().lint_file(FIXTURES / rel)
        assert findings, f"{rel} produced no findings"
        assert {f.code for f in findings} == {code}

    @pytest.mark.parametrize("rel,code", sorted(FIXTURE_CODES.items()))
    def test_cli_exits_nonzero_with_code(self, rel, code, capsys):
        exit_code = cli_main(["lint", str(FIXTURES / rel)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert code in out

    def test_every_fixture_is_covered(self):
        # fixtures/deep/ belongs to the ZProve rules and is pinned by
        # test_deep_rules.py; this inventory covers the per-file rules.
        on_disk = {
            str(p.relative_to(FIXTURES))
            for p in FIXTURES.rglob("*.py")
            if p.relative_to(FIXTURES).parts[0] != "deep"
        }
        assert on_disk == set(FIXTURE_CODES)


class TestZS001UnseededRandomness:
    def test_global_calls_flagged(self):
        assert lint("import random\nrandom.shuffle([1])\n") == {"ZS001"}

    def test_aliased_import_flagged(self):
        assert lint("import random as rnd\nx = rnd.random()\n") == {"ZS001"}

    def test_unseeded_random_instance_flagged(self):
        assert lint("import random\nr = random.Random()\n") == {"ZS001"}

    def test_seeded_random_instance_clean(self):
        assert lint("import random\nr = random.Random(42)\n") == set()

    def test_from_import_of_global_function_flagged(self):
        assert lint("from random import choice\n") == {"ZS001"}

    def test_from_import_of_random_class_clean(self):
        assert lint("from random import Random\nr = Random(1)\n") == set()

    def test_numpy_global_rng_flagged(self):
        assert lint("import numpy as np\nx = np.random.rand(3)\n") == {"ZS001"}

    def test_numpy_default_rng_seeded_clean(self):
        text = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint(text) == set()

    def test_numpy_default_rng_unseeded_flagged(self):
        text = "import numpy as np\nrng = np.random.default_rng()\n"
        assert lint(text) == {"ZS001"}

    def test_method_call_on_instance_clean(self):
        text = (
            "import random\n"
            "rng = random.Random(3)\n"
            "x = rng.choice([1, 2])\n"
        )
        assert lint(text) == set()


class TestZS002FloatEquality:
    def test_eq_against_float_literal_flagged(self):
        assert lint("ok = x == 1.5\n") == {"ZS002"}

    def test_neq_against_negative_float_flagged(self):
        assert lint("ok = x != -0.5\n") == {"ZS002"}

    def test_chained_comparison_flagged(self):
        assert lint("ok = 0 <= x == 0.3\n") == {"ZS002"}

    def test_int_equality_clean(self):
        assert lint("ok = x == 3\n") == set()

    def test_float_ordering_clean(self):
        assert lint("ok = x < 1.5 or x >= 0.5\n") == set()

    def test_isclose_suggested_pattern_clean(self):
        assert lint("import math\nok = math.isclose(x, 1.5)\n") == set()


POLICY_HEADER = "class ReplacementPolicy:\n    pass\n\n\n"


class TestZS003PolicyContract:
    def test_missing_hooks_flagged(self):
        text = POLICY_HEADER + (
            "class P(ReplacementPolicy):\n"
            "    def on_insert(self, address):\n"
            "        pass\n"
        )
        assert lint(text) == {"ZS003"}

    def test_complete_policy_clean(self):
        text = POLICY_HEADER + (
            "class P(ReplacementPolicy):\n"
            "    def on_insert(self, address): pass\n"
            "    def on_access(self, address, is_write=False): pass\n"
            "    def on_evict(self, address): pass\n"
            "    def score(self, address): return 0\n"
        )
        assert lint(text) == set()

    def test_abstract_subclass_exempt_from_hooks(self):
        text = (
            "import abc\n\n\n" + POLICY_HEADER +
            "class P(ReplacementPolicy):\n"
            "    @abc.abstractmethod\n"
            "    def extra(self): ...\n"
        )
        assert lint(text) == set()

    def test_candidates_mutation_flagged(self):
        text = POLICY_HEADER + (
            "class P(ReplacementPolicy):\n"
            "    def on_insert(self, address): pass\n"
            "    def on_access(self, address, is_write=False): pass\n"
            "    def on_evict(self, address): pass\n"
            "    def score(self, address): return 0\n"
            "    def select_victim(self, candidates):\n"
            "        candidates.sort()\n"
            "        return candidates[0]\n"
        )
        assert lint(text) == {"ZS003"}

    def test_candidates_item_assignment_flagged(self):
        text = POLICY_HEADER + (
            "class P(ReplacementPolicy):\n"
            "    def on_insert(self, address): pass\n"
            "    def on_access(self, address, is_write=False): pass\n"
            "    def on_evict(self, address): pass\n"
            "    def score(self, address): return 0\n"
            "    def select_victim(self, candidates):\n"
            "        candidates[0] = None\n"
            "        return None\n"
        )
        assert lint(text) == {"ZS003"}

    def test_copy_then_sort_clean(self):
        text = POLICY_HEADER + (
            "class P(ReplacementPolicy):\n"
            "    def on_insert(self, address): pass\n"
            "    def on_access(self, address, is_write=False): pass\n"
            "    def on_evict(self, address): pass\n"
            "    def score(self, address): return 0\n"
            "    def select_victim(self, candidates):\n"
            "        ordered = sorted(candidates)\n"
            "        return ordered[0]\n"
        )
        assert lint(text) == set()

    def test_unrelated_class_clean(self):
        assert lint("class Widget:\n    def on_insert(self): pass\n") == set()


DATACLASS_BAD = (
    "from dataclasses import dataclass\n\n\n"
    "@dataclass\n"
    "class Stats:\n"
    "    hits: int = 0\n"
)


class TestZS004DataclassSlots:
    def test_bare_dataclass_in_core_flagged(self):
        engine = LintEngine()
        findings = engine.lint_text(DATACLASS_BAD, "src/repro/core/x.py")
        assert {f.code for f in findings} == {"ZS004"}

    def test_slots_true_clean(self):
        text = DATACLASS_BAD.replace("@dataclass", "@dataclass(slots=True)")
        assert (
            LintEngine().lint_text(text, "src/repro/core/x.py") == []
        )

    def test_frozen_without_slots_flagged(self):
        text = DATACLASS_BAD.replace("@dataclass", "@dataclass(frozen=True)")
        findings = LintEngine().lint_text(text, "src/repro/core/x.py")
        assert {f.code for f in findings} == {"ZS004"}

    def test_outside_core_not_scoped(self):
        assert LintEngine().lint_text(DATACLASS_BAD, "src/repro/viz/x.py") == []


class TestZS005WallClockGlobalState:
    def test_time_time_flagged(self):
        assert lint("import time\nt = time.time()\n") == {"ZS005"}

    def test_perf_counter_flagged(self):
        assert lint("import time\nt = time.perf_counter()\n") == {"ZS005"}

    def test_from_time_import_flagged(self):
        assert lint("from time import monotonic\n") == {"ZS005"}

    def test_datetime_now_flagged(self):
        text = "import datetime\nd = datetime.datetime.now()\n"
        assert lint(text) == {"ZS005"}

    def test_global_statement_flagged(self):
        assert lint("x = 0\ndef f():\n    global x\n    x = 1\n") == {"ZS005"}

    def test_time_sleep_clean(self):
        assert lint("import time\ntime.sleep(0)\n") == set()

    def test_cli_module_out_of_scope(self):
        text = "import time\nt = time.time()\n"
        assert LintEngine().lint_text(text, "src/repro/cli.py") == []

    def test_analysis_package_out_of_scope(self):
        text = "import time\nt = time.time()\n"
        path = "src/repro/analysis/cli.py"
        assert LintEngine().lint_text(text, path) == []

    def test_obs_package_out_of_scope(self):
        # The profiler/heartbeat measure the simulator process, which is
        # the one legitimate use of the host clock.
        text = "import time\nt = time.perf_counter()\n"
        path = "src/repro/obs/profiling.py"
        assert LintEngine().lint_text(text, path) == []


def lint_core(text: str) -> set[str]:
    """Codes for a snippet placed under a core/ path (ZS006 scope)."""
    return {
        f.code
        for f in LintEngine().lint_text(text, "src/repro/core/x.py")
    }


class TestZS006CounterBypass:
    def test_stats_facade_increment_flagged(self):
        assert lint_core("self.stats.hits += 1\n") == {"ZS006"}

    def test_named_stats_facade_flagged(self):
        assert lint_core("self.victim_stats.swaps += 1\n") == {"ZS006"}

    def test_foreign_stats_facade_flagged(self):
        assert lint_core("cache.stats.data_writes += 1\n") == {"ZS006"}

    def test_decrement_flagged(self):
        assert lint_core("self.main.stats.writebacks -= 1\n") == {"ZS006"}

    def test_bare_counter_suffix_on_self_flagged(self):
        assert lint_core("self.writeback_hits += 1\n") == {"ZS006"}

    def test_vocabulary_name_on_self_flagged(self):
        assert lint_core("self.swaps += 1\n") == {"ZS006"}

    def test_subscripted_counter_list_flagged(self):
        assert lint_core("self.bank_accesses[bank] += 1\n") == {"ZS006"}

    def test_counter_value_increment_clean(self):
        assert lint_core("self._c_hits.value += 1\n") == set()

    def test_counters_dict_increment_clean(self):
        assert lint_core('sc["hits"].value += 1\n') == set()

    def test_private_accumulator_clean(self):
        assert lint_core("self._epoch_misses += 1\n") == set()

    def test_non_counter_attribute_clean(self):
        assert lint_core("self.queueing_cycles += delay\n") == set()


def lint_kernels(text: str) -> set[str]:
    """Codes for a snippet placed under a kernels/ path (fold-point scope)."""
    return {
        f.code
        for f in LintEngine().lint_text(text, "src/repro/kernels/x.py")
    }


class TestZS006KernelFoldPoints:
    def test_value_overwrite_flagged(self):
        assert lint_kernels("self._c_hits.value = batch\n") == {"ZS006"}

    def test_counters_dict_overwrite_flagged(self):
        assert lint_kernels('sc["hits"].value = batch\n') == {"ZS006"}

    def test_additive_fold_clean(self):
        assert lint_kernels("self._c_hits.value += batch\n") == set()

    def test_counter_ref_rebind_clean(self):
        # Rebinding the counter *reference* (stats-swap listeners) is
        # not a fold overwrite.
        assert lint_kernels("self._c_hits = cache._c_hits\n") == set()

    def test_value_overwrite_outside_kernels_not_flagged(self):
        # Resetting a counter in core/ (e.g. epoch rollover) is a
        # legitimate overwrite; the fold-point arm is kernels-only.
        assert lint_core("self._c_hits.value = 0\n") == set()

    def test_facade_increment_still_flagged_in_kernels(self):
        assert lint_kernels("self.stats.hits += 1\n") == {"ZS006"}

    def test_non_self_plain_attribute_clean(self):
        assert lint_core("repl.tag_reads += 1\n") == set()

    def test_local_subscript_clean(self):
        assert lint_core("cycles[core] += stall\n") == set()

    def test_outside_core_and_sim_not_scoped(self):
        text = "self.stats.hits += 1\n"
        assert LintEngine().lint_text(text, "src/repro/viz/x.py") == []
