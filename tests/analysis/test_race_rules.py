"""Fixture + acceptance tests for the ZRace deep rules (ZS110-ZS113).

Mirrors the ZProve conventions: every rule has a flagged fixture with
pinned line numbers and a clean twin under ``fixtures/deep/serve/``;
the acceptance tests plant the three serve-layer race regressions the
rules exist to catch — a dropped shard-lock acquisition, a deadlocking
double acquisition, and a mutation on ``prepare_fill``'s off-lock
path — into scratch copies of the production tree.
"""

from pathlib import Path

import pytest

from repro.analysis.semantic import SemanticModel, run_deep
from repro.analysis.semantic.race import (
    LockDisciplineRule,
    LockOrderRule,
    OffLockPurityRule,
    RaceAnalysis,
    ThreadEscapeRule,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "deep" / "serve"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def deep_findings(path, code):
    report, _ = run_deep([path], select=[code], use_cache=False)
    return [f for f in report.findings if f.code == code]


# ---------------------------------------------------------------------------
# Fixtures: pinned lines and clean twins


FLAGGED = [
    ("zs110_unlocked_mutation.py", "ZS110", [14, 19, 20, 24]),
    ("zs111_lock_order.py", "ZS111", [14, 19, 24, 27]),
    ("zs112_offlock_mutation.py", "ZS112", [16, 27]),
    ("zs113_thread_escape.py", "ZS113", [10, 15]),
]

CLEAN = [
    ("zs110_clean.py", "ZS110"),
    ("zs111_clean.py", "ZS111"),
    ("zs112_clean.py", "ZS112"),
    ("zs113_clean.py", "ZS113"),
]


@pytest.mark.parametrize("name,code,lines", FLAGGED)
def test_flagged_fixture_pins_exact_lines(name, code, lines):
    findings = deep_findings(FIXTURES / name, code)
    assert [f.line for f in findings] == lines


@pytest.mark.parametrize("name,code", CLEAN)
def test_clean_twin_has_no_findings(name, code):
    assert deep_findings(FIXTURES / name, code) == []


def test_zs110_message_names_the_owning_lock():
    findings = deep_findings(
        FIXTURES / "zs110_unlocked_mutation.py", "ZS110"
    )
    assert all("Shard.lock" in f.message for f in findings)
    assert any("zrace: atomic" in f.message for f in findings)


def test_zs111_distinguishes_cycle_blocking_and_raw_acquire():
    messages = [
        f.message
        for f in deep_findings(FIXTURES / "zs111_lock_order.py", "ZS111")
    ]
    assert sum("acquisition cycle" in m for m in messages) == 2
    assert sum("blocking call 'recv'" in m for m in messages) == 1
    assert sum("raw .acquire()" in m for m in messages) == 1


def test_suppression_comment_silences_a_race_finding(tmp_path):
    # Path parts must keep "serve" or the rule will not run at all.
    scratch = tmp_path / "serve"
    scratch.mkdir()
    source = FIXTURES / "zs110_unlocked_mutation.py"
    lines = source.read_text(encoding="utf-8").splitlines()
    lines[13] = lines[13].split("#")[0].rstrip() + "  # zsan: ignore[ZS110]"
    target = scratch / source.name
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert [f.line for f in deep_findings(target, "ZS110")] == [19, 20, 24]


# ---------------------------------------------------------------------------
# The analysis layer itself, over the production tree


@pytest.fixture(scope="module")
def src_races():
    model = SemanticModel.build([SRC])
    analysis = RaceAnalysis(model)
    analysis.entry_locksets()  # force the full scan
    return analysis


def test_thread_roots_cover_loadgen_and_server(src_races):
    labels = {root.label for root in src_races.thread_roots()}
    assert any("_worker" in label for label in labels)
    assert any("handle" in label for label in labels)


def test_cacheshard_is_a_guarded_class(src_races):
    guarded = src_races.guarded_in("repro.serve.shard")
    assert "CacheShard" in guarded
    shard = guarded["CacheShard"]
    assert shard.lock_tokens == frozenset({"CacheShard.lock"})
    assert {"_entries", "_recency", "cache"} <= set(shard.fields)


def test_locked_helpers_inherit_the_shard_lock_on_entry(src_races):
    # _drain_recency is only ever called under the shard lock: its
    # entry lockset must carry it, or its recency-buffer swap (and
    # every helper like it) would be a false positive.
    entry = src_races.entry_locksets()
    key = ("repro.serve.shard", "CacheShard._drain_recency")
    assert "CacheShard.lock" in entry[key]


def test_lock_order_graph_of_src_is_acyclic(src_races):
    assert src_races.cyclic_edges() == set()


# ---------------------------------------------------------------------------
# Planted acceptance: the three serve-layer races


def _scratch_tree(tmp_path):
    import shutil

    scratch = tmp_path / "repro"
    shutil.copytree(SRC, scratch)
    return scratch


def test_zs110_catches_removed_shard_lock(tmp_path):
    scratch = _scratch_tree(tmp_path)
    shard = scratch / "serve" / "shard.py"
    text = shard.read_text(encoding="utf-8")
    anchor = (
        "        with self.lock:\n"
        "            self._drain_recency()\n"
        "            resident = address in self.cache\n"
    )
    assert anchor in text  # CacheShard.invalidate's critical section
    planted = text.replace(
        anchor,
        anchor.replace("with self.lock:", "if True:"),
        1,
    )
    shard.write_text(planted, encoding="utf-8")

    report, _ = run_deep([scratch], rules=[LockDisciplineRule()])
    findings = [f for f in report.findings if f.code == "ZS110"]
    assert findings, "removed shard-lock acquisition was not caught"
    assert any("CacheShard.invalidate" in f.message for f in findings)
    assert all("CacheShard.lock" in f.message for f in findings)
    assert all(f.path.endswith("shard.py") for f in findings)


def test_zs111_catches_double_acquisition(tmp_path):
    scratch = _scratch_tree(tmp_path)
    shard = scratch / "serve" / "shard.py"
    text = shard.read_text(encoding="utf-8")
    anchor = (
        "        with self.lock:\n"
        "            self._drain_recency()\n"
    )
    assert anchor in text
    planted = text.replace(
        anchor,
        "        with self.lock:\n"
        "            with self.lock:\n"
        "                self._drain_recency()\n",
        1,
    )
    shard.write_text(planted, encoding="utf-8")

    report, _ = run_deep([scratch], rules=[LockOrderRule()])
    findings = [f for f in report.findings if f.code == "ZS111"]
    assert findings, "double lock acquisition was not caught"
    assert any(
        "re-acquires non-reentrant 'CacheShard.lock'" in f.message
        for f in findings
    )


def test_zs112_catches_mutation_planted_in_prepare_fill(tmp_path):
    scratch = _scratch_tree(tmp_path)
    twophase = scratch / "core" / "twophase.py"
    text = twophase.read_text(encoding="utf-8")
    anchor = "    def prepare_fill(self, address: int) -> Replacement:\n"
    assert anchor in text
    planted = text.replace(
        anchor, anchor + "        self.array._pos.pop(address, None)\n", 1
    )
    twophase.write_text(planted, encoding="utf-8")

    report, _ = run_deep([scratch], rules=[OffLockPurityRule()])
    findings = [f for f in report.findings if f.code == "ZS112"]
    assert findings, "off-lock mutation in prepare_fill was not caught"
    assert any("prepare_fill" in f.message for f in findings)
    assert all(f.path.endswith("twophase.py") for f in findings)


@pytest.mark.parametrize(
    "rule",
    [LockDisciplineRule, LockOrderRule, OffLockPurityRule, ThreadEscapeRule],
)
def test_race_rules_pass_unmodified_tree(tmp_path, rule):
    scratch = _scratch_tree(tmp_path)
    report, _ = run_deep([scratch], rules=[rule()])
    assert [f for f in report.findings if f.code == rule.code] == []
