"""Tests for the exhaustive bounded model checker (third ZSpec backend).

Two halves: the default CI configurations must explore clean to the
gate depth, and a *planted* commit-ordering bug in a scratch copy of
the two-phase controller must be caught with a concrete, replayable
counterexample — the acceptance criterion that the checker actually
distinguishes correct machines from subtly broken ones.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.analysis.modelcheck import (
    ModelConfig,
    default_configs,
    run_model_check,
)
from repro.analysis.sanitizer import SanitizedArray
from repro.core.controller import Cache
from repro.core.setassoc import SetAssociativeArray
from repro.core.zcache import ZCacheArray
from repro.replacement.lru import LRU

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


# ---------------------------------------------------------------------------
# Configuration surface.


def test_default_configs_cover_both_geometries_and_twophase():
    configs = default_configs()
    names = [c.name for c in configs]
    assert len(names) >= 3
    assert any("zcache" in n for n in names)
    assert any("setassoc" in n for n in names)
    assert any("twophase" in n for n in names)
    lockstep = [c for c in configs if c.build_turbo is not None]
    assert len(lockstep) >= 2  # >=2 engine-lockstep geometries in CI


def test_ops_alphabet_orders_reads_writes_invalidates():
    cfg = ModelConfig(
        name="t",
        description="t",
        addresses=(1, 2),
        build_reference=lambda: None,
        write_addresses=(1,),
        invalidate_addresses=(2,),
    )
    assert cfg.ops() == (("r", 1), ("r", 2), ("w", 1), ("inv", 2))


def test_run_model_check_rejects_nonpositive_depth():
    with pytest.raises(ValueError, match="depth"):
        run_model_check(depth=0, configs=())


def test_turbo_builder_must_actually_engage_turbo():
    # Cache silently falls back to the reference engine when the turbo
    # kernel declines a geometry; the checker must refuse to "verify"
    # reference against itself.
    cfg = ModelConfig(
        name="fallback",
        description="turbo builder that falls back",
        addresses=(1, 2),
        build_reference=lambda: Cache(
            SetAssociativeArray(2, 2, hash_kind="bitsel"), LRU()
        ),
        build_turbo=lambda: Cache(
            # DFS walk strategy declines the turbo ZWalk kernel
            ZCacheArray(2, 2, levels=2, hash_kind="h3", strategy="dfs"),
            LRU(),
            engine="turbo",
        ),
    )
    with pytest.raises(ValueError, match="declined"):
        run_model_check(depth=1, configs=(cfg,))


# ---------------------------------------------------------------------------
# The CI gate: every default config explores clean to depth 6.


def test_default_configs_clean_to_gate_depth():
    result = run_model_check(depth=6)
    assert result.ok, result.render()
    for cfg_result in result.results:
        # Exhaustive means the search actually branched: each config
        # must visit well beyond the trivial handful of states.
        assert cfg_result.states > 100, cfg_result.config
        assert cfg_result.transitions > cfg_result.states


def test_default_configs_clean_to_depth_three():
    # Fast smoke twin of the depth-6 gate for plain test runs.
    result = run_model_check(depth=3)
    assert result.ok, result.render()
    report = result.render()
    assert "violation" not in report
    assert report.count(" ok") == len(result.results)


def test_memoization_bounds_state_count():
    # A single-address alphabet reaches a fixpoint immediately: the
    # state space is tiny no matter the depth.
    cfg = ModelConfig(
        name="one-addr",
        description="degenerate single-address machine",
        addresses=(1,),
        build_reference=lambda: Cache(
            SanitizedArray(
                ZCacheArray(2, 2, levels=2, hash_kind="h3", hash_seed=7),
                deep_check_interval=1,
            ),
            LRU(),
        ),
    )
    result = run_model_check(depth=8, configs=(cfg,))
    assert result.ok
    assert result.results[0].states <= 4


# ---------------------------------------------------------------------------
# Acceptance: a planted commit-ordering bug in the two-phase controller
# must produce a counterexample with the exact access sequence.

_PHASE2_LINE = "            evicted2 = phase2_choice.address  # None = free slot found\n"
_COMMIT_CALL = "            return self._commit_phase1(address, repl, node1, evicted2)"


def _load_planted_twophase(tmp_path):
    """Scratch copy of twophase.py with phase-1 committed *before* the
    phase-2 eviction instead of after it — the ordering the paper's
    two-phase protocol exists to forbid."""
    source = (SRC / "core" / "twophase.py").read_text(encoding="utf-8")
    assert _PHASE2_LINE in source
    assert _COMMIT_CALL in source
    planted = source.replace(
        _PHASE2_LINE,
        _PHASE2_LINE
        + "            first = self._commit_phase1(address, repl, node1, evicted2)\n",
        1,
    ).replace(_COMMIT_CALL, "            return first", 1)
    assert planted != source
    path = tmp_path / "twophase_planted.py"
    path.write_text(planted, encoding="utf-8")

    spec = importlib.util.spec_from_file_location("twophase_planted", path)
    mod = importlib.util.module_from_spec(spec)
    # Register before exec: the checker pickles controller instances,
    # and pickle resolves classes through sys.modules.
    sys.modules["twophase_planted"] = mod
    try:
        spec.loader.exec_module(mod)
        yield mod
    finally:
        del sys.modules["twophase_planted"]


@pytest.fixture
def planted_twophase(tmp_path):
    yield from _load_planted_twophase(tmp_path)


def _twophase_config(cls):
    def build():
        cache = cls(
            ZCacheArray(2, 2, levels=2, hash_kind="h3", hash_seed=11),
            LRU(),
            name="planted-2p",
        )
        cache.array = SanitizedArray(cache.array, deep_check_interval=1)
        return cache

    return ModelConfig(
        name="twophase-planted",
        description="two-phase controller with planted commit reorder",
        addresses=(1, 2, 3, 4, 5),
        build_reference=build,
    )


def test_planted_commit_reorder_is_caught(planted_twophase):
    cfg = _twophase_config(planted_twophase.TwoPhaseZCache)
    result = run_model_check(depth=5, configs=(cfg,))
    assert not result.ok, "planted commit-order bug escaped the checker"
    violation = result.violations()[0]
    assert violation.config == "twophase-planted"
    # The counterexample is a concrete replayable op sequence reaching
    # the reorder: phase-1 runs early, so the later eviction step finds
    # the board already rewritten.
    assert len(violation.sequence) <= 5
    assert all(step.startswith("r:") for step in violation.sequence)
    assert "raised" in violation.message or "invariant" in violation.message


def test_unplanted_twophase_is_clean_at_same_depth():
    # The exact config the planted test uses, minus the plant: proves
    # the counterexample comes from the bug, not the configuration.
    from repro.core.twophase import TwoPhaseZCache

    cfg = _twophase_config(TwoPhaseZCache)
    result = run_model_check(depth=5, configs=(cfg,))
    assert result.ok, result.render()
