"""Framework-level tests for the ZSan lint engine.

Rule *content* is covered by test_lint_rules.py; here we pin the
engine mechanics: registration, suppression comments, select/ignore
filtering, output formats, exit codes, and parse-error handling.
"""

import ast
import json

import pytest

from repro.analysis.lint import (
    PARSE_ERROR_CODE,
    RULE_REGISTRY,
    Finding,
    LintEngine,
    LintRule,
    default_rules,
    register_rule,
)

UNSEEDED = "import random\nx = random.random()\n"


class TestRegistry:
    def test_default_rules_cover_zs001_to_zs005(self):
        codes = {r.code for r in default_rules()}
        assert {"ZS001", "ZS002", "ZS003", "ZS004", "ZS005"} <= codes

    def test_register_rejects_bad_code(self):
        with pytest.raises(ValueError, match="ZSnnn"):

            @register_rule
            class Bad(LintRule):
                code = "X1"
                name = "bad"
                summary = "bad"

                def check(self, src):
                    return iter(())

    def test_register_rejects_duplicate_code(self):
        existing = next(iter(RULE_REGISTRY))
        with pytest.raises(ValueError, match="duplicate"):

            @register_rule
            class Clash(LintRule):
                code = existing
                name = "clash"
                summary = "clash"

                def check(self, src):
                    return iter(())

    def test_parse_error_code_reserved(self):
        with pytest.raises(ValueError, match="reserved"):

            @register_rule
            class Reserved(LintRule):
                code = PARSE_ERROR_CODE
                name = "reserved"
                summary = "reserved"

                def check(self, src):
                    return iter(())


class TestSuppression:
    def test_line_suppression_with_code(self):
        clean = "import random\nx = random.random()  # zsan: ignore[ZS001]\n"
        assert LintEngine().lint_text(clean) == []

    def test_bare_ignore_suppresses_all_codes(self):
        clean = "import random\nx = random.random()  # zsan: ignore\n"
        assert LintEngine().lint_text(clean) == []

    def test_wrong_code_does_not_suppress(self):
        text = "import random\nx = random.random()  # zsan: ignore[ZS002]\n"
        assert [f.code for f in LintEngine().lint_text(text)] == ["ZS001"]

    def test_suppression_is_per_line(self):
        text = (
            "import random\n"
            "a = random.random()  # zsan: ignore[ZS001]\n"
            "b = random.random()\n"
        )
        findings = LintEngine().lint_text(text)
        assert [f.line for f in findings] == [3]

    def test_multi_code_suppression(self):
        text = (
            "import random\n"
            "ok = random.random() == 0.5  # zsan: ignore[ZS001, ZS002]\n"
        )
        assert LintEngine().lint_text(text) == []

    def test_suppression_after_backslash_continuation(self):
        # The comment can only live on the last physical line of a
        # backslash-continued statement; the finding anchors on the
        # first. Suppression must cover the whole statement span.
        text = (
            "import random\n"
            "x = random.random() + \\\n"
            "    1.0  # zsan: ignore[ZS001]\n"
        )
        assert LintEngine().lint_text(text) == []

    def test_suppression_inside_multiline_call(self):
        text = (
            "import random\n"
            "x = max(\n"
            "    random.random(),  # zsan: ignore[ZS001]\n"
            "    0.5,\n"
            ")\n"
        )
        assert LintEngine().lint_text(text) == []

    def test_suppression_on_first_line_of_multiline_call(self):
        text = (
            "import random\n"
            "x = max(  # zsan: ignore[ZS001]\n"
            "    random.random(),\n"
            "    0.5,\n"
            ")\n"
        )
        assert LintEngine().lint_text(text) == []

    def test_suppression_does_not_leak_across_statements(self):
        # A suppression inside one statement must not silence the next,
        # and a suppression in a function body must not act as a
        # function-wide blanket.
        text = (
            "import random\n"
            "def f():\n"
            "    a = random.random()  # zsan: ignore[ZS001]\n"
            "    b = random.random()\n"
            "    return a + b\n"
        )
        findings = LintEngine().lint_text(text)
        assert [f.line for f in findings] == [4]

    def test_suppression_on_decorator_line_covers_class_header(self):
        # ZS004 anchors on the class statement; the natural place for
        # the ignore is the @dataclass decorator line just above.
        text = (
            "from dataclasses import dataclass\n"
            "@dataclass  # zsan: ignore[ZS004]\n"
            "class Hot:\n"
            "    x: int\n"
        )
        assert LintEngine().lint_text(text, path="core/hot.py") == []


class TestFiltering:
    def test_select_runs_only_named_rules(self):
        text = "import random\nbad = random.random() == 0.5\n"
        only = LintEngine(select=["ZS002"]).lint_text(text)
        assert {f.code for f in only} == {"ZS002"}

    def test_ignore_drops_named_rules(self):
        text = "import random\nbad = random.random() == 0.5\n"
        rest = LintEngine(ignore=["ZS002"]).lint_text(text)
        assert {f.code for f in rest} == {"ZS001"}

    def test_select_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintEngine(select=["ZS999"])


class TestOutput:
    def test_parse_error_becomes_zs000(self):
        findings = LintEngine().lint_text("def broken(:\n")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]

    def test_finding_render_format(self):
        f = Finding(code="ZS001", message="msg", path="a.py", line=3, column=4)
        assert f.render() == "a.py:3:5: ZS001 msg"

    def test_lint_paths_report(self, tmp_path):
        (tmp_path / "bad.py").write_text(UNSEEDED)
        (tmp_path / "good.py").write_text("x = 1\n")
        report = LintEngine().lint_paths([tmp_path])
        assert report.files_checked == 2
        assert report.exit_code == 1
        assert report.codes() == {"ZS001"}
        payload = json.loads(report.render_json())
        assert payload["files_checked"] == 2
        assert payload["findings"][0]["code"] == "ZS001"

    def test_clean_report_exit_zero(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        report = LintEngine().lint_paths([tmp_path])
        assert report.exit_code == 0
        assert "clean" in report.render_text()

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text(UNSEEDED)
        (tmp_path / "a.py").write_text(UNSEEDED)
        report = LintEngine().lint_paths([tmp_path])
        assert [f.path for f in report.findings] == sorted(
            f.path for f in report.findings
        )


class TestCustomRule:
    def test_path_scoping_via_applies_to(self, tmp_path):
        class OnlyCore(LintRule):
            code = "ZS998"
            name = "only-core"
            summary = "fires everywhere it applies"

            @classmethod
            def applies_to(cls, path):
                return "core" in path.parts

            def check(self, src):
                yield self.finding(src, ast.parse("x").body[0], "hit")

        engine = LintEngine(rules=[OnlyCore()])
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        report = engine.lint_paths([tmp_path])
        assert len(report.findings) == 1
        assert "core" in report.findings[0].path
