"""ZSan fixture: every statement here violates ZS001 (never imported)."""

import random


def pick(items):
    """Draw from the process-global RNG (forbidden)."""
    random.seed(123)
    unseeded = random.Random()
    value = random.random() + unseeded.random()
    return random.choice(items), value
