"""ZSan fixture: float-literal equality comparisons (ZS002)."""


def converged(miss_rate, delta):
    """Exact float comparisons (forbidden)."""
    if miss_rate == 0.25:
        return True
    return delta != 0.0
