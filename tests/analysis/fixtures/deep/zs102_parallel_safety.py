"""ZS102 fixture: worker dispatches that break process isolation."""

from concurrent.futures import ProcessPoolExecutor

RESULTS = []
CACHE = {}
TOTAL = 0


def worker(job):
    RESULTS.append(job)  # flagged: mutator on module-level mutable
    return job


def helper_mutates(job):
    CACHE["latest"] = job  # flagged: subscript store into module state


def worker_two(job):
    helper_mutates(job)  # violation reached through the call graph
    with open("scratch.log", "w") as fh:  # flagged: open() in worker
        fh.write(str(job))
    return job


def global_worker(job):
    global TOTAL  # flagged: global declaration in worker-reachable code
    TOTAL += job
    return job


def dispatch(jobs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, j) for j in jobs]
        futures.append(pool.submit(worker_two, jobs[0]))
        futures.append(pool.submit(global_worker, jobs[0]))
        futures.append(pool.submit(lambda j: j, jobs[0]))  # flagged: lambda
        handle = open("input.bin", "rb")
        futures.append(pool.submit(worker, handle))  # flagged: open handle
        futures.append(pool.submit(worker, RESULTS))  # flagged: module state
        return [f.result() for f in futures]
