"""ZS107 fixture: a turbo path that drops a reference-path fold."""


class ZCacheArray:
    def build_replacement(self, address):
        self._sc["walks"].value += 1
        return []

    def commit_replacement(self, repl, chosen):
        self._sc["relocations"].value += 1
        return chosen


class Cache:
    def access(self, address):
        self._sc["hits"].value += 1
        self._sc["evictions"].value += 1
        self._sc["pin_overflows"].value += 1  # exempt: turbo declines pins

    def invalidate(self, address):
        self._sc["invalidations"].value += 1

    def absorb_writeback(self, address):
        self._sc["writebacks"].value += 1


class TurboCore:
    def access(self, address):
        self._c_hits.value += 1
        self._c_evictions.value += 1
        self._c_walks.value += 1
        self._c_relocations.value += 1

    def invalidate(self, address):
        self._c_invalidations.value += 1
        # never folds "writebacks": the reference path does
