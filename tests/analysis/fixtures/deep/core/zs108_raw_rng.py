"""ZS108 fixture: raw module-level entropy in a simulator package."""

import random

import numpy as np
from numpy import random as npr


def pick_way(ways):
    return random.randrange(ways)


def jitter():
    return np.random.rand()


def shuffle_slots(slots):
    npr.shuffle(slots)
    return slots
