"""ZS106 fixture: raises after array-state mutation (torn updates)."""


class TornArray:
    def install(self, pos, address):
        self._lines[0][pos] = address
        if address in self._pos:
            raise RuntimeError("duplicate block")  # state already torn
        self._pos[address] = pos

    def evict(self, address):
        del self._pos[address]
        if address is None:
            raise KeyError("cannot evict the empty tag")
