"""ZS109 fixture: spans opened outside a ``with`` statement."""


def leaky(tracker, core):
    handle = tracker.span("replay")  # flagged: leaks open on raise
    tracker.turbo_batches(core, "fig2", every=8)  # flagged: hook leaks
    return handle


def stored_then_entered(tracker):
    ctx = tracker.span("outer")  # flagged: not directly a with item
    with ctx:
        return tracker


def nested(tracker):
    with tracker.span("outer"):
        inner = tracker.span("inner")  # flagged even under a with
        return inner


def private_opener(tracker):
    return tracker._start("raw")  # flagged: internal opener in sim code
