"""ZS104 fixture: module-level mutable globals in simulator scope."""

_CACHE = {}  # flagged: mutable dict
REGISTRY = []  # flagged: mutable list
TUNING = dict(alpha=1, beta=2)  # flagged: dict() constructor
SEEN = set()  # flagged: mutable set
SUPPRESSED = []  # zsan: ignore[ZS104]
