"""ZS106 clean twin: guards precede mutation, or the def is atomic."""


class GuardedArray:
    def install(self, pos, address):
        # All rejection happens before the first write.
        if address in self._pos:
            raise RuntimeError("duplicate block")
        self._lines[0][pos] = address
        self._pos[address] = pos

    def swap(self, a, b):  # zspec: atomic
        self._pos[a], self._pos[b] = self._pos[b], self._pos[a]
        if a == b:
            raise ValueError("degenerate swap")  # marker-exempted

    def read_only(self, address):
        if address not in self._pos:
            raise KeyError(address)  # no mutation anywhere: fine
        return self._pos[address]
