"""ZS108 clean twin: entropy through seeded, replayable streams."""

import random


class SeededKernel:
    def __init__(self, seed):
        # Constructing a stream is sanctioned; only draws are policed.
        self._rng = random.Random(seed)

    def pick_way(self, ways):
        return self._rng.randrange(ways)


def derive(seed):
    rng = random.Random(seed)
    return rng.getrandbits(32)
