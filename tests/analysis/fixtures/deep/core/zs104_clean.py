"""ZS104 clean twin: only frozen module-level state."""

from types import MappingProxyType

LIMITS = (1, 2, 3)
NAMES = frozenset({"a", "b"})
TABLE = MappingProxyType({"alpha": 1})
_LEVELS = 4
BANNER = "zcache"

__all__ = ["LIMITS", "NAMES", "TABLE"]
