"""ZS109 clean twin: every span opens as a ``with`` item."""


def disciplined(tracker, core):
    with tracker.span("replay", key="k") as span:
        with tracker.turbo_batches(core, "fig2", every=8):
            span.set_attr(status="ok")
    tracker.record_span("job", start=0.0, end=1.0)
    return tracker


def multi_item(tracker, other):
    with tracker.span("a"), other.span("b"):
        return tracker
