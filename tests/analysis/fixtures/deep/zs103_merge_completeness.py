"""ZS103 fixture: merge paths that drop registered metrics."""


class Counter:
    def __init__(self, name):
        self.name = name
        self.value = 0


class Gauge:
    def __init__(self, name):
        self.name = name
        self.value = 0.0


class RegistryStats:
    """Stand-in facade base (resolved by base-name tail)."""

    _COUNTER_FIELDS = ()

    def __init__(self, registry):
        self.registry = registry

    def merge_counters(self, other):
        pass


class LeakyRegistry:
    """merge_snapshot folds counters but silently drops gauges."""

    def __init__(self):
        self._store = {}

    def _register(self, name, metric):
        self._store[name] = metric
        return metric

    def counter(self, name):
        return self._register(name, Counter(name))

    def gauge(self, name):
        return self._register(name, Gauge(name))

    def merge_snapshot(self, snapshot):  # flagged: no gauge fold
        for name, value in snapshot.items():
            self.counter(name).value += value


class ForgetfulStats(RegistryStats):
    """merge() covers one counter field and forgets the rest."""

    _COUNTER_FIELDS = ("hits", "misses")

    def __init__(self, registry):
        super().__init__(registry)
        self._depth = registry.int_histogram("depth")

    def merge(self, other):  # flagged: misses and _depth never folded
        self.hits += other.hits


class SilentStats(RegistryStats):
    """Registers an extra metric and defines no merge() at all."""

    def __post_init__(self):
        object.__setattr__(
            self, "_levels", self.registry.int_histogram("levels")
        )
