"""ZS110 clean twin: locks, folds, markers, and entry locksets."""

import threading


class _Cell:
    def __init__(self):
        self.value = 0


class CleanShard:
    def __init__(self):
        self.lock = threading.Lock()
        self.entries = {}
        self.recency = []
        self._c_hits = _Cell()

    def put(self, key, value):
        with self.lock:
            self._install(key, value)

    def _install(self, key, value):
        # Clean: only ever called under the lock (entry lockset).
        self.entries[key] = value

    def read(self, key):
        self._c_hits.value += 1  # clean: GIL-atomic counter fold
        self.recency.append(key)  # zrace: atomic
        return self.entries.get(key)

    def drop(self, key):
        with self.lock:
            del self.entries[key]
