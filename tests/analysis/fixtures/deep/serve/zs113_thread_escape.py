"""ZS113 fixture: thread-root code leaking into module-level state."""

import threading

RESULTS = []
TOTAL = 0


def tally(n):
    global TOTAL  # flagged: global declaration on a thread path
    TOTAL += n  # the declaration above already damns this write


def worker(n):
    RESULTS.append(n)  # flagged: mutating a module-level mutable
    tally(n)


def fanout():
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
