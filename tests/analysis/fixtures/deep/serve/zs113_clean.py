"""ZS113 clean twin: thread results flow through parameters."""

import threading


def worker(n, out):
    out[n] = n * n  # clean: parameter slot is the sanctioned channel


def fanout():
    out = [None] * 4
    threads = [
        threading.Thread(target=worker, args=(i, out)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return out
