"""ZS112 clean twin: pure walk, mutations behind locked call sites."""

import threading


class Plan:
    def __init__(self, address):
        self.address = address


class Array:
    def __init__(self):
        self._pos = {}

    def build_replacement(self, address):
        return Plan(address)

    def commit_replacement(self, plan):
        self._pos[plan.address] = 1  # clean: only reached under lock


class TwoPhase:
    def __init__(self):
        self.lock = threading.Lock()
        self.array = Array()
        self.stats = {}

    def prepare_fill(self, address):
        with self.lock:
            self._note(address)  # locked call site prunes the subtree
        return self.array.build_replacement(address)

    def _note(self, address):
        self.stats["walks"] = 1

    def commit(self, plan):
        with self.lock:
            self.array.commit_replacement(plan)
