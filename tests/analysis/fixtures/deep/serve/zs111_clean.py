"""ZS111 clean twin: one global order, I/O off-lock, with-managed."""

import threading


class Ordered:
    def __init__(self):
        self.a_lock = threading.Lock()
        self.b_lock = threading.Lock()
        self.state = {}

    def first(self):
        with self.a_lock:
            with self.b_lock:  # clean: a-before-b everywhere
                self.state["first"] = 1

    def second(self):
        with self.a_lock:
            with self.b_lock:
                self.state["second"] = 2

    def io_then_lock(self, sock):
        data = sock.recv(1024)  # clean: blocking call off-lock
        with self.a_lock:
            self.state["io"] = data
