"""ZS110 fixture: guarded-field mutations that skip the shard lock."""

import threading


class Shard:
    def __init__(self):
        self.lock = threading.Lock()
        self.entries = {}
        self.recency = []
        self.hits = 0

    def put(self, key, value):
        self.entries[key] = value  # flagged: unlocked write
        with self.lock:
            self.entries[key] = value  # clean: locked twin

    def read(self, key):
        self.hits += 1  # flagged: unlocked += (not a counter fold)
        self.recency.append(key)  # flagged: unlocked mutator call
        return self.entries.get(key)

    def drop(self, key):
        del self.entries[key]  # flagged: unlocked delete
