"""ZS112 fixture: mutations on the off-lock walk path."""

import threading


class Plan:
    def __init__(self, address):
        self.address = address


class Array:
    def __init__(self):
        self._pos = {}

    def build_replacement(self, address):
        self._pos[address] = 0  # flagged: array-state write off-lock
        return Plan(address)


class TwoPhase:
    def __init__(self):
        self.lock = threading.Lock()
        self.array = Array()
        self.stats = {}

    def prepare_fill(self, address):
        self.stats["walks"] = 1  # flagged: guarded write off-lock
        return self.array.build_replacement(address)
