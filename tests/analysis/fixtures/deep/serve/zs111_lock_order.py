"""ZS111 fixture: acquisition cycle, blocking under lock, bare acquire."""

import threading


class Pair:
    def __init__(self):
        self.a_lock = threading.Lock()
        self.b_lock = threading.Lock()
        self.state = {}

    def ab(self):
        with self.a_lock:
            with self.b_lock:  # flagged: on the a->b->a cycle
                self.state["ab"] = 1

    def ba(self):
        with self.b_lock:
            with self.a_lock:  # flagged: on the b->a->b cycle
                self.state["ba"] = 1

    def blocked(self, sock):
        with self.a_lock:
            return sock.recv(1024)  # flagged: blocking under a_lock

    def raw(self):
        self.a_lock.acquire()  # flagged: raw acquire outside 'with'
        try:
            self.state["raw"] = 1
        finally:
            self.a_lock.release()
