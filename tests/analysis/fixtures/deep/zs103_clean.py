"""ZS103 clean twin: every registered metric is covered by a merge."""


class Counter:
    def __init__(self, name):
        self.name = name
        self.value = 0


class Gauge:
    def __init__(self, name):
        self.name = name
        self.value = 0.0


class RegistryStats:
    """Stand-in facade base (resolved by base-name tail)."""

    _COUNTER_FIELDS = ()

    def __init__(self, registry):
        self.registry = registry

    def merge_counters(self, other):
        pass


class CompleteRegistry:
    def __init__(self):
        self._store = {}

    def _register(self, name, metric):
        self._store[name] = metric
        return metric

    def counter(self, name):
        return self._register(name, Counter(name))

    def gauge(self, name):
        return self._register(name, Gauge(name))

    def merge_snapshot(self, snapshot):
        for name, value in snapshot.items():
            existing = self._store.get(name)
            if isinstance(existing, Gauge):
                existing.value = value
            else:
                self.counter(name).value += value


class CompleteStats(RegistryStats):
    _COUNTER_FIELDS = ("hits", "misses")

    def __init__(self, registry):
        super().__init__(registry)
        self._depth = registry.int_histogram("depth")

    def merge(self, other):
        self.merge_counters(other)
        self._depth.add_counts(other.depth_hist)
