"""ZS101 clean twin: every seed traces to an approved origin."""

import random
from zlib import crc32


def derive_job_seed(base_seed, key):
    """Stand-in for the sweep engine's sanctioned derivation."""
    return crc32(key.encode()) ^ base_seed


def from_param(seed):
    return random.Random(seed)


def from_config(cfg):
    return random.Random(cfg.seed)


def from_derivation(base_seed, key):
    return random.Random(derive_job_seed(base_seed, key))


def mixed(seed, offset=3):
    return random.Random(seed + offset)


def _shift(s):
    return (s << 1) | 1


def through_helper(seed):
    # Interprocedural: the helper's summary substitutes the caller's
    # parameter for its own.
    return random.Random(_shift(seed))


def build(hash_seed):
    return hash_seed


def keyword_from_param(seed):
    return build(hash_seed=seed + 1)


def per_bank(count, seed):
    return [random.Random(seed + i) for i in range(count)]
