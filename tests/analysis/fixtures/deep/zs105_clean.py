"""ZS105 clean twin: walks that only read, plus non-walk mutators."""


class PureWalkArray:
    def __init__(self):
        self._lines = [[None, None]]
        self._pos = {}

    def _peek(self, address):
        return self._pos.get(address)

    def build_replacement(self, address):
        # Reads and local state only; candidate lists are walk-private.
        found = self._peek(address)
        candidates = [found] if found is not None else []
        return candidates

    def build_reinsertion(self, victim):
        return [c for c in self.build_replacement(victim) if c]

    def commit_replacement(self, repl, chosen):
        # Mutation is fine outside the walk: commit owns state changes.
        self._pos[repl] = chosen
        return chosen


class HonestWalk:
    def collect(self, address, tags):
        return [slot for slot, tag in enumerate(tags) if tag == address]
