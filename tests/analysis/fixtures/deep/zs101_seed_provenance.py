"""ZS101 fixture: seeds that do not trace to an approved origin.

Every RNG construction below should be flagged by the deep
seed-provenance rule — constants (directly or through helper
summaries) and nondeterministic taints — except the explicitly
suppressed one.
"""

import random
import time


def constant_seed():
    return random.Random(42)  # flagged: bare constant


def wall_clock_seed():
    return random.Random(int(time.time()))  # flagged: taint:wall-clock


def identity_seed(job):
    return random.Random(id(job))  # flagged: taint:object-identity


def salted_hash_seed(key):
    return random.Random(hash(key))  # flagged: taint:salted-hash


def fixed_base():
    return 1234


def seeded_from_helper_constant():
    # Interprocedural: the helper's return summary is a constant.
    return random.Random(fixed_base())


def build(hash_seed):
    return hash_seed


def keyword_site():
    return build(hash_seed=5)  # flagged: constant via seed keyword


def suppressed_site():
    return random.Random(7)  # zsan: ignore[ZS101]
