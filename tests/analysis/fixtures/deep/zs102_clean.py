"""ZS102 clean twin: workers communicate only through return values."""

from concurrent.futures import ProcessPoolExecutor

LIMITS = (1, 2, 3)


def helper(job):
    return job + 1


def worker(job, limit):
    local = []
    local.append(helper(job))
    return sum(local) * limit


def worker_two(job):
    return helper(job)


def dispatch(jobs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, j, LIMITS[0]) for j in jobs]
        futures.append(pool.submit(worker_two, jobs[0]))
        return [f.result() for f in futures]
