"""ZS105 fixture: candidate collection that mutates array state."""


class LeakyWalkArray:
    def __init__(self):
        self._lines = [[None, None]]
        self._pos = {}
        self.tags = []

    def _promote(self, address):
        # Reachable from the walk through one call edge.
        self._pos[address] = (0, 0)

    def build_replacement(self, address):
        self.tags.append(address)  # direct mutation inside the walk
        self._promote(address)
        return []

    def build_reinsertion(self, victim):
        del self._lines[0][0]  # delete through array storage
        return []


class SneakyWalk:
    def collect(self, address, tags):
        self._free.discard(address)  # turbo-kernel walk mutating state
        return []
