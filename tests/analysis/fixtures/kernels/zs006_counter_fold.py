"""ZS006 fixture: kernel fold points that overwrite counters.

Must trip ONLY ZS006 (lives under a ``kernels`` path component so the
fold-point arm of the rule applies). A vectorized kernel computes a
batch delta and must fold it additively into the registered Counter;
these assignments discard whatever the counter already held.
"""


class BadFoldKernel:
    def __init__(self, counter, stats_counters):
        self._c_hits = counter
        self._sc = stats_counters

    def fold(self, batch_hits, batch_reads):
        self._c_hits.value = batch_hits  # ZS006: overwrite at a fold point
        self._sc["tag_reads"].value = batch_reads  # ZS006: same, via dict
        return self._c_hits.value
