"""ZSan fixture: wall-clock reads and global state (ZS005)."""

import time

_EPOCH = 0


def stamp_epoch():
    """Host-clock read plus a global mutation (both forbidden)."""
    global _EPOCH
    _EPOCH = time.time()
    return _EPOCH
