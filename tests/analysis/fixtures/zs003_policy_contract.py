"""ZSan fixture: a ReplacementPolicy violating the contract (ZS003)."""


class ReplacementPolicy:
    """Stand-in base so the fixture never needs the real package."""


class BrokenPolicy(ReplacementPolicy):
    """Misses on_access/on_evict/score AND mutates the candidate list."""

    def on_insert(self, address):
        """Only hook implemented."""

    def select_victim(self, candidates):
        """Sorting the controller's list corrupts instrumentation."""
        candidates.sort()
        return candidates.pop()
