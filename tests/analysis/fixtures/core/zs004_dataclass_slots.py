"""ZSan fixture: a core/ dataclass without slots=True (ZS004)."""

from dataclasses import dataclass


@dataclass
class HotPathStats:
    """Allocated per access; must declare slots=True."""

    hits: int = 0
    misses: int = 0
