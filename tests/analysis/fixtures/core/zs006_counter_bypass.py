"""Fixture: ad-hoc counter increments that bypass the metrics registry.

Must trip ONLY ZS006 (lives under a ``core`` path component so the rule
applies; no dataclasses, randomness, clocks, or float equality).
"""


class BadBank:
    """Keeps shadow counters the registry never sees."""

    def __init__(self) -> None:
        self.stats = object()
        self.victim_stats = object()
        self.writeback_hits = 0
        self.bank_accesses = [0, 0]
        self._epoch_misses = 0
        self.queueing_cycles = 0

    def run(self, bank: int, delay: int) -> None:
        """Exercise flagged and exempt increment shapes."""
        self.stats.hits += 1  # ZS006: stats facade attribute
        self.victim_stats.swaps += 1  # ZS006: *_stats facade attribute
        self.writeback_hits += 1  # ZS006: bare counting suffix on self
        self.bank_accesses[bank] += 1  # ZS006: counter list on self
        # Exempt shapes: private accumulator, non-counter name, and the
        # sanctioned registry increment.
        self._epoch_misses += 1
        self.queueing_cycles += delay
        self.counter.value += 1
