"""Tests for the ZProve semantic model layers.

Covers the module graph (import resolution, closures, fingerprints,
cycle detection, parse errors), name resolution through aliased imports
and re-export chains, the call graph, intra-procedural def-use through
the origin evaluator, and the incremental cache — including the
soundness case: editing a dependency must re-analyze its *untouched*
dependents.
"""

import json

from repro.analysis.semantic import (
    CACHE_VERSION,
    AnalysisCache,
    ModuleGraph,
    SemanticModel,
    func_key,
    module_name_for,
    run_deep,
    rules_signature,
)
from repro.analysis.semantic.dataflow import (
    CONST,
    TAINT_WALLCLOCK,
    param_token,
)


def write_pkg(root, files):
    """Materialize ``{relpath: source}`` as a package tree under root."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        # Every directory on the way down becomes a package.
        for parent in path.parents:
            if parent == root:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return root


# ---------------------------------------------------------------------------
# Module graph


class TestModuleGraph:
    def test_module_names_follow_package_structure(self, tmp_path):
        write_pkg(tmp_path, {"pkg/sub/mod.py": "X = 1\n"})
        assert module_name_for(tmp_path / "pkg" / "sub" / "mod.py") == (
            "pkg.sub.mod"
        )
        assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"

    def test_import_edges_and_dependents(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/util.py": "def f(x):\n    return x\n",
                "pkg/main.py": "from pkg.util import f\n",
            },
        )
        graph = ModuleGraph.build([tmp_path])
        assert "pkg.util" in graph.imports["pkg.main"]
        assert "pkg.main" in graph.dependents["pkg.util"]
        assert graph.import_closure("pkg.main") >= {"pkg.main", "pkg.util"}
        assert graph.dependent_closure("pkg.util") >= {
            "pkg.util",
            "pkg.main",
        }

    def test_from_pkg_import_submodule_binds_the_module(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/leaf.py": "def f():\n    return 0\n",
                "pkg/main.py": "from pkg import leaf\n",
            },
        )
        graph = ModuleGraph.build([tmp_path])
        bound = graph.imported("pkg.main", "leaf")
        assert bound is not None
        assert bound.module == "pkg.leaf"
        assert bound.symbol is None
        assert bound.internal

    def test_cycle_detection_finds_the_scc(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/a.py": "from pkg import b\n",
                "pkg/b.py": "import pkg.c as c\n",
                "pkg/c.py": "from pkg.a import helper\n",
                "pkg/leaf.py": "X = 1\n",
            },
        )
        graph = ModuleGraph.build([tmp_path])
        assert graph.cycles() == [["pkg.a", "pkg.b", "pkg.c"]]

    def test_acyclic_diamond_has_no_cycles(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/base.py": "X = 1\n",
                "pkg/left.py": "from pkg.base import X\n",
                "pkg/right.py": "from pkg.base import X\n",
                "pkg/top.py": (
                    "from pkg.left import X\nfrom pkg.right import X\n"
                ),
            },
        )
        assert ModuleGraph.build([tmp_path]).cycles() == []

    def test_fingerprint_changes_only_with_the_import_closure(
        self, tmp_path
    ):
        files = {
            "pkg/dep.py": "def base(x):\n    return x\n",
            "pkg/user.py": "from pkg.dep import base\n",
            "pkg/loner.py": "Y = 2\n",
        }
        write_pkg(tmp_path, files)
        before = ModuleGraph.build([tmp_path])
        fp_user = before.fingerprint("pkg.user")
        fp_loner = before.fingerprint("pkg.loner")

        # Rebuilding over identical text is stable.
        again = ModuleGraph.build([tmp_path])
        assert again.fingerprint("pkg.user") == fp_user

        # Editing the dependency invalidates the dependent...
        (tmp_path / "pkg" / "dep.py").write_text(
            "def base(x):\n    return 42\n", encoding="utf-8"
        )
        after = ModuleGraph.build([tmp_path])
        assert after.fingerprint("pkg.user") != fp_user
        # ...but not an unrelated module.
        assert after.fingerprint("pkg.loner") == fp_loner

    def test_parse_errors_are_recorded_not_fatal(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/good.py": "X = 1\n",
                "pkg/bad.py": "def broken(:\n",
            },
        )
        graph = ModuleGraph.build([tmp_path])
        assert "pkg.bad" not in graph.modules
        assert any("bad.py" in p for p in graph.parse_errors)

        report, stats = run_deep([tmp_path], use_cache=False)
        zs000 = [f for f in report.findings if f.code == "ZS000"]
        assert len(zs000) == 1
        assert "bad.py" in zs000[0].path
        assert stats.parse_errors == 1
        assert report.files_checked == len(graph.modules) + 1


# ---------------------------------------------------------------------------
# Name resolution and the call graph


class TestResolution:
    def test_aliased_import_resolves_to_the_definition(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/util.py": "def f(x):\n    return x\n",
                "pkg/main.py": (
                    "from pkg.util import f as g\n"
                    "def caller(x):\n"
                    "    return g(x)\n"
                ),
            },
        )
        model = SemanticModel.build([tmp_path])
        info = model.resolve_callable("pkg.main", "g")
        assert info is not None
        assert (info.module, info.qualname) == ("pkg.util", "f")

    def test_callgraph_edge_through_aliased_import(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/util.py": "def f(x):\n    return x\n",
                "pkg/main.py": (
                    "from pkg.util import f as g\n"
                    "def caller(x):\n"
                    "    return g(x)\n"
                ),
            },
        )
        model = SemanticModel.build([tmp_path])
        caller = model.symbols_of("pkg.main").lookup_function("caller")
        callees = model.callgraph.callees(func_key(caller))
        assert ("pkg.util", "f") in callees
        assert ("pkg.util", "f") in model.callgraph.reachable(
            [func_key(caller)]
        )

    def test_reexport_chain_is_chased(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/util.py": "def f(x):\n    return x\n",
                "pkg/__init__.py": "from pkg.util import f\n",
                "other.py": (
                    "from pkg import f\n"
                    "def use(x):\n"
                    "    return f(x)\n"
                ),
            },
        )
        model = SemanticModel.build([tmp_path])
        info = model.resolve_callable("other", "f")
        assert info is not None
        assert (info.module, info.qualname) == ("pkg.util", "f")

    def test_class_constructor_resolves_to_init(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/thing.py": (
                    "class Thing:\n"
                    "    def __init__(self, n):\n"
                    "        self.n = n\n"
                ),
                "pkg/main.py": "from pkg.thing import Thing\n",
            },
        )
        model = SemanticModel.build([tmp_path])
        info = model.resolve_callable("pkg.main", "Thing")
        assert info is not None
        assert info.qualname == "Thing.__init__"

    def test_module_alias_dotted_call(self, tmp_path):
        write_pkg(
            tmp_path,
            {
                "pkg/util.py": "def f(x):\n    return x\n",
                "pkg/main.py": "import pkg.util as u\n",
            },
        )
        model = SemanticModel.build([tmp_path])
        info = model.resolve_dotted_callable("pkg.main", "u.f")
        assert info is not None
        assert (info.module, info.qualname) == ("pkg.util", "f")


# ---------------------------------------------------------------------------
# Origin evaluator (def-use)


class TestOrigins:
    def _summary(self, tmp_path, source, qualname):
        write_pkg(tmp_path, {"pkg/mod.py": source})
        model = SemanticModel.build([tmp_path])
        func = model.symbols_of("pkg.mod").lookup_function(qualname)
        assert func is not None
        return model.evaluator.summary(func)

    def test_def_use_across_augmented_assignment(self, tmp_path):
        origins = self._summary(
            tmp_path,
            "def acc(seed):\n"
            "    total = 1\n"
            "    total += seed\n"
            "    return total\n",
            "acc",
        )
        # The augmented assignment folds the old binding into the new
        # one: both the constant and the parameter survive.
        assert param_token("seed") in origins
        assert CONST in origins

    def test_wall_clock_taint_flows_through_helper(self, tmp_path):
        origins = self._summary(
            tmp_path,
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
            "def mk():\n"
            "    return now()\n",
            "mk",
        )
        assert TAINT_WALLCLOCK in origins

    def test_parameter_substitution_at_call_sites(self, tmp_path):
        origins = self._summary(
            tmp_path,
            "def shift(s):\n"
            "    return (s << 1) | 1\n"
            "def outer(seed):\n"
            "    return shift(seed)\n",
            "outer",
        )
        # shift()'s summary is param:s; binding the call argument must
        # rewrite it to the caller's param:seed.
        assert param_token("seed") in origins
        assert param_token("s") not in origins

    def test_recursion_stays_conservative(self, tmp_path):
        origins = self._summary(
            tmp_path,
            "def loop(n):\n"
            "    if n:\n"
            "        return loop(n - 1)\n"
            "    return 0\n",
            "loop",
        )
        assert "unknown" in origins or CONST in origins


# ---------------------------------------------------------------------------
# Incremental cache


CACHED_PKG = {
    "pkg/helper.py": "def base(seed):\n    return seed\n",
    "pkg/main.py": (
        "import random\n"
        "from pkg.helper import base\n"
        "def make(seed):\n"
        "    return random.Random(base(seed))\n"
    ),
    "pkg/loner.py": "Y = 2\n",
}


class TestCache:
    def test_warm_run_is_all_hits(self, tmp_path):
        write_pkg(tmp_path, CACHED_PKG)
        cache = tmp_path / "cache.json"
        report, cold = run_deep([tmp_path], cache_path=cache)
        assert not report.findings
        assert cold.modules_analyzed == cold.modules_total
        assert cold.cache_hits == 0

        report, warm = run_deep([tmp_path], cache_path=cache)
        assert not report.findings
        assert warm.modules_analyzed == 0
        assert warm.cache_hits == warm.modules_total

    def test_dependency_edit_reanalyzes_untouched_dependent(
        self, tmp_path
    ):
        """The soundness case for interprocedural caching.

        main.py never changes, but helper.base's summary flips from
        param-passthrough to constant — the warm run must re-analyze
        main.py (its closure fingerprint changed) and surface the new
        ZS101 finding there.
        """
        write_pkg(tmp_path, CACHED_PKG)
        cache = tmp_path / "cache.json"
        report, _ = run_deep([tmp_path], cache_path=cache)
        assert not report.findings

        (tmp_path / "pkg" / "helper.py").write_text(
            "def base(seed):\n    return 42\n", encoding="utf-8"
        )
        report, stats = run_deep([tmp_path], cache_path=cache)
        zs101 = [f for f in report.findings if f.code == "ZS101"]
        assert len(zs101) == 1
        assert zs101[0].path.endswith("main.py")
        # helper + main re-analyzed; the unrelated module stays cached.
        assert stats.modules_analyzed >= 2
        assert stats.cache_hits >= 1

    def test_corrupt_cache_file_is_tolerated_and_replaced(self, tmp_path):
        write_pkg(tmp_path, CACHED_PKG)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        report, stats = run_deep([tmp_path], cache_path=cache)
        assert not report.findings
        assert stats.cache_hits == 0
        # The run rewrites a valid cache.
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["version"] == CACHE_VERSION
        assert payload["entries"]

    def test_version_mismatch_invalidates_everything(self, tmp_path):
        write_pkg(tmp_path, CACHED_PKG)
        cache = tmp_path / "cache.json"
        run_deep([tmp_path], cache_path=cache)
        payload = json.loads(cache.read_text(encoding="utf-8"))
        payload["version"] = CACHE_VERSION - 1
        cache.write_text(json.dumps(payload), encoding="utf-8")

        loaded = AnalysisCache(cache)
        loaded.load()
        assert len(loaded) == 0

    def test_rules_hash_mismatch_invalidates_everything(self, tmp_path):
        """Changing the rule set must cold-start the cache.

        Cached findings are per-module *outputs of the rules*; a cache
        written by an older rule set would silently miss everything a
        newly added rule (or a widened one) should flag.
        """
        write_pkg(tmp_path, CACHED_PKG)
        cache = tmp_path / "cache.json"
        run_deep([tmp_path], cache_path=cache)
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["rules_hash"] == rules_signature()

        stale = AnalysisCache(cache, rules_hash="0" * 16)
        stale.load()
        assert len(stale) == 0

        # And a fresh run against the doctored hash re-analyzes all.
        payload["rules_hash"] = "0" * 16
        cache.write_text(json.dumps(payload), encoding="utf-8")
        report, stats = run_deep([tmp_path], cache_path=cache)
        assert stats.cache_hits == 0
        assert stats.modules_analyzed == stats.modules_total

    def test_rules_signature_tracks_rule_source(self):
        from repro.analysis.semantic import DeepRule, default_deep_rules

        full = rules_signature()
        assert full == rules_signature(list(default_deep_rules()))
        assert len(full) == 16

        class Variant(DeepRule):
            code = "ZS199"
            name = "variant"
            summary = "variant"

            def check_module(self, model, module):
                return []

        subset = rules_signature(list(default_deep_rules())[:2])
        variant = rules_signature([Variant()])
        assert len({full, subset, variant}) == 3

    def test_prune_drops_departed_modules(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache.json")
        cache.put("keep", "fp1", [])
        cache.put("gone", "fp2", [])
        cache.prune(["keep"])
        assert len(cache) == 1
        assert cache.get("keep", "fp1") == []
        assert cache.get("gone", "fp2") is None
