"""Self-lint: the library must stay clean under its own rules.

This is the enforcement half of the ZSan deal — the rules only have
teeth if the tree is kept at zero findings, so CI (and this test) pin
``zcache-repro lint src/repro`` to a clean exit.
"""

from pathlib import Path

from repro.analysis.lint import LintEngine
from repro.cli import main as cli_main

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_is_lint_clean():
    report = LintEngine().lint_paths([SRC])
    assert report.files_checked > 50
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"src/repro has lint findings:\n{rendered}"


def test_cli_lint_exits_zero_on_source_tree(capsys):
    assert cli_main(["lint", str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_rules_listing(capsys):
    assert cli_main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for code in ("ZS001", "ZS002", "ZS003", "ZS004", "ZS005", "ZS006"):
        assert code in out
