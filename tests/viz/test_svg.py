"""Tests for the SVG chart writer and the figure glue."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.viz import LineChart, Series


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [], [])


class TestLineChart:
    def chart(self, **kw):
        c = LineChart(title="t", **kw)
        c.add(Series("s1", [0, 1, 2], [0.0, 0.5, 1.0]))
        return c

    def test_renders_valid_xml(self):
        root = parse(self.chart().render())
        assert root.tag.endswith("svg")

    def test_no_series_rejected(self):
        with pytest.raises(ValueError):
            LineChart(title="empty").render()

    def test_coordinates_monotone(self):
        c = self.chart()
        assert c.x_to_px(0) < c.x_to_px(1) < c.x_to_px(2)
        # SVG y grows downward: larger data y -> smaller pixel y.
        assert c.y_to_px(1.0) < c.y_to_px(0.0)

    def test_points_inside_plot_box(self):
        c = self.chart()
        x0, y0, x1, y1 = c._plot_box()
        for x, y in [(0, 0.0), (2, 1.0), (1, 0.5)]:
            assert x0 - 0.5 <= c.x_to_px(x) <= x1 + 0.5
            assert y0 - 0.5 <= c.y_to_px(y) <= y1 + 0.5

    def test_log_scale_positions(self):
        c = LineChart(title="log", log_y=True, y_min=1e-4, y_max=1.0)
        c.add(Series("s", [0, 1], [1e-4, 1.0]))
        mid = c.y_to_px(1e-2)  # geometric midpoint
        assert mid == pytest.approx(
            (c.y_to_px(1e-4) + c.y_to_px(1.0)) / 2, abs=0.5
        )

    def test_log_scale_rejects_nonpositive_bound(self):
        c = LineChart(title="log", log_y=True, y_min=0.0)
        c.add(Series("s", [0, 1], [0.5, 1.0]))
        with pytest.raises(ValueError):
            c.render()

    def test_series_drawn_and_legend_present(self):
        svg = self.chart().render()
        assert "polyline" in svg
        assert "s1" in svg

    def test_dashed_reference_line(self):
        c = self.chart()
        c.add(Series("ref", [0, 2], [0.2, 0.2], dashed=True))
        assert "stroke-dasharray" in c.render()

    def test_title_escaped(self):
        c = LineChart(title="a < b & c")
        c.add(Series("s", [0, 1], [0, 1]))
        svg = c.render()
        assert "a &lt; b &amp; c" in svg

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        self.chart().save(path)
        assert path.read_text().startswith("<svg")

    def test_degenerate_flat_series(self):
        c = LineChart(title="flat")
        c.add(Series("s", [1, 1], [3.0, 3.0]))
        parse(c.render())  # must not divide by zero


class TestFigureGlue:
    def test_fig2_svg(self, tmp_path):
        from repro.experiments import fig2
        from repro.viz import fig2_svg

        result = fig2.run(cache_blocks=256, accesses=4_000)
        paths = fig2_svg(tmp_path, result)
        assert len(paths) == 2
        for p in paths:
            parse(p.read_text())

    def test_fig3_svg(self, tmp_path):
        from repro.experiments import fig3
        from repro.experiments.runner import ExperimentScale
        from repro.viz import fig3_svg

        cells = fig3.run(
            scale=ExperimentScale(instructions_per_core=3000, seed=2),
            workloads=("canneal",),
        )
        paths = fig3_svg(tmp_path, cells)
        assert len(paths) == 4  # one per panel
        for p in paths:
            parse(p.read_text())

    def test_fig4_svg(self, tmp_path):
        from repro.experiments import fig4
        from repro.experiments.runner import ExperimentScale
        from repro.viz import fig4_svg

        result = fig4.run(
            scale=ExperimentScale(
                instructions_per_core=800, workloads=("gcc", "canneal")
            ),
            policies=("lru",),
        )
        paths = fig4_svg(tmp_path, result, policy="lru")
        assert len(paths) == 2
        for p in paths:
            parse(p.read_text())


class TestBarChart:
    from repro.viz import BarChart

    def make(self):
        from repro.viz import BarChart

        c = BarChart(title="bars", groups=["a", "b"], reference=1.0)
        c.add("s1", [1.0, 1.2])
        c.add("s2", [0.9, 1.4])
        return c

    def test_renders_valid_xml(self):
        parse(self.make().render())

    def test_value_count_validated(self):
        from repro.viz import BarChart

        c = BarChart(title="bars", groups=["a", "b"])
        with pytest.raises(ValueError):
            c.add("s", [1.0])

    def test_empty_rejected(self):
        from repro.viz import BarChart

        with pytest.raises(ValueError):
            BarChart(title="bars", groups=["a"]).render()
        c = BarChart(title="bars", groups=[])
        c.series.append(("s", []))
        with pytest.raises(ValueError):
            c.render()

    def test_bars_and_reference_drawn(self):
        svg = self.make().render()
        assert svg.count("<rect") >= 5  # frame + bg + 4 bars
        assert "stroke-dasharray" in svg  # reference line

    def test_fig5_svg(self, tmp_path):
        from repro.experiments import fig5
        from repro.experiments.runner import ExperimentScale
        from repro.viz import fig5_svg

        cells = fig5.run(
            scale=ExperimentScale(
                instructions_per_core=600, workloads=("gcc", "canneal")
            ),
            policies=("lru",),
        )
        paths = fig5_svg(tmp_path, cells, policy="lru")
        assert len(paths) == 2
        for p in paths:
            parse(p.read_text())
