"""Documentation-coverage guard.

Every public module, class, and function in the library must carry a
docstring — part of the project's documentation deliverable, enforced
mechanically so it cannot rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} is missing a docstring"
    )


def _inherits_doc(cls, mname: str) -> bool:
    """True when a base class documents the same method (inherited doc)."""
    for base in cls.__mro__[1:]:
        member = base.__dict__.get(mname)
        if member is not None and getattr(member, "__doc__", None):
            return True
    return False


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if member.__doc__ and member.__doc__.strip():
                    continue
                # Overrides of documented base methods inherit their
                # contract (the Python convention help() follows).
                if _inherits_doc(obj, mname):
                    continue
                undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )
