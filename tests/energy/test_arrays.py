"""Tests for the CACTI-like array model and its Table II calibration."""

import pytest

from repro.energy import ArrayModel, CacheCostModel, CacheGeometry, table2_rows


class TestGeometry:
    def test_blocks_and_lines(self):
        g = CacheGeometry(1 << 20, ways=4)
        assert g.blocks == 16384
        assert g.lines_per_way == 4096
        assert g.capacity_mb == pytest.approx(1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CacheGeometry(32, ways=1)  # smaller than a line
        with pytest.raises(ValueError):
            CacheGeometry(1 << 20, ways=0)
        with pytest.raises(ValueError):
            CacheGeometry(3 * 64, ways=2)  # 3 blocks / 2 ways


class TestScalingLaws:
    def test_hit_energy_grows_with_ways(self):
        e = [
            ArrayModel(CacheGeometry(1 << 20, w)).hit_energy()
            for w in (2, 4, 8, 16, 32)
        ]
        assert e == sorted(e)

    def test_parallel_costs_more_than_serial(self):
        g = CacheGeometry(1 << 20, 8)
        assert ArrayModel(g, parallel_lookup=True).hit_energy() > ArrayModel(
            g
        ).hit_energy()

    def test_parallel_is_faster_than_serial(self):
        g = CacheGeometry(1 << 20, 8)
        assert (
            ArrayModel(g, parallel_lookup=True).hit_latency()
            < ArrayModel(g).hit_latency()
        )

    def test_energy_grows_with_capacity(self):
        small = ArrayModel(CacheGeometry(1 << 19, 4)).hit_energy()
        big = ArrayModel(CacheGeometry(1 << 21, 4)).hit_energy()
        assert big > small

    def test_area_dominated_by_data(self):
        m = ArrayModel(CacheGeometry(1 << 20, 4))
        # Tag overhead is ~11% of data bits: total within 25% of data area.
        from repro.energy.arrays import AREA_DATA_PER_MB

        assert m.area_mm2() < AREA_DATA_PER_MB * 1.25
        assert m.area_mm2() > AREA_DATA_PER_MB

    def test_latency_in_table1_range(self):
        # Table I: L2 bank latencies 6-11 cycles across designs.
        lats = []
        for parallel in (False, True):
            for ways in (4, 8, 16, 32):
                lats.append(
                    ArrayModel(
                        CacheGeometry(1 << 20, ways), parallel
                    ).hit_latency_cycles()
                )
        assert min(lats) >= 6
        assert max(lats) <= 11


class TestPaperCalibration:
    """The published Table II ratios, asserted exactly (see §VI-A)."""

    def test_serial_hit_energy_ratio(self):
        s4 = CacheCostModel(1 << 20, 4)
        s32 = CacheCostModel(1 << 20, 32)
        assert s32.hit_energy() / s4.hit_energy() == pytest.approx(2.0, rel=0.05)

    def test_parallel_hit_energy_ratio(self):
        p4 = CacheCostModel(1 << 20, 4, parallel_lookup=True)
        p32 = CacheCostModel(1 << 20, 32, parallel_lookup=True)
        assert p32.hit_energy() / p4.hit_energy() == pytest.approx(3.3, rel=0.05)

    def test_latency_ratios(self):
        s4 = CacheCostModel(1 << 20, 4)
        s32 = CacheCostModel(1 << 20, 32)
        assert s32.hit_latency_cycles() / s4.hit_latency_cycles() == pytest.approx(
            1.23, abs=0.05
        )
        p4 = CacheCostModel(1 << 20, 4, parallel_lookup=True)
        p32 = CacheCostModel(1 << 20, 32, parallel_lookup=True)
        assert p32.hit_latency_cycles() / p4.hit_latency_cycles() == pytest.approx(
            1.32, abs=0.05
        )

    def test_area_ratio(self):
        s4 = CacheCostModel(1 << 20, 4)
        s32 = CacheCostModel(1 << 20, 32)
        assert s32.area_mm2() / s4.area_mm2() == pytest.approx(1.22, abs=0.02)

    def test_zcache_keeps_4way_hit_costs(self):
        s4 = CacheCostModel(1 << 20, 4)
        z52 = CacheCostModel(1 << 20, 4, levels=3)
        assert z52.hit_energy() == pytest.approx(s4.hit_energy())
        assert z52.hit_latency_cycles() == s4.hit_latency_cycles()
        assert z52.area_mm2() == pytest.approx(s4.area_mm2())

    def test_z52_miss_energy_vs_sa32(self):
        z52 = CacheCostModel(1 << 20, 4, levels=3, mean_relocations=1.4)
        s32 = CacheCostModel(1 << 20, 32)
        ratio = z52.miss_energy() / s32.miss_energy()
        assert 1.1 < ratio < 1.6  # paper: ~1.3x

    def test_miss_energy_grows_with_candidates(self):
        z16 = CacheCostModel(1 << 20, 4, levels=2, mean_relocations=0.5)
        z52 = CacheCostModel(1 << 20, 4, levels=3, mean_relocations=0.5)
        assert z52.miss_energy() > z16.miss_energy()


class TestCostModel:
    def test_design_names(self):
        assert CacheCostModel(1 << 20, 4).design_name() == "SA-4"
        assert CacheCostModel(1 << 20, 4, levels=3).design_name() == "Z4/52"

    def test_walk_energy_formula(self):
        z = CacheCostModel(1 << 20, 4, levels=2)
        e_rt = z.array.energies().tag_read
        assert z.walk_energy() == pytest.approx(16 * e_rt)
        assert z.walk_energy(candidates=8) == pytest.approx(8 * e_rt)

    def test_rejects_bad_relocations(self):
        with pytest.raises(ValueError):
            CacheCostModel(1 << 20, 4, levels=2, mean_relocations=5.0)

    def test_table2_has_all_rows(self):
        rows = table2_rows()
        assert len(rows) == 12  # (4 SA + 2 Z) x 2 lookup types
        labels = {(r.design, r.lookup) for r in rows}
        assert ("Z4/52", "serial") in labels
        assert ("SA-32", "parallel") in labels

    def test_rows_format(self):
        for row in table2_rows():
            assert "nJ" in row.format()
