"""Tests for the chip power model."""

import pytest

from repro.energy import CacheCostModel, ChipPowerModel


def model(parallel=False, levels=None):
    return ChipPowerModel(
        CacheCostModel(1 << 20, 4, levels=levels, parallel_lookup=parallel),
        num_cores=32,
        num_banks=8,
    )


class TestStaticPower:
    def test_in_tdp_ballpark(self):
        # Paper: ~90 W TDP. Static alone should be a sane fraction.
        watts = model().static_watts()
        assert 20 < watts < 90

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            ChipPowerModel(CacheCostModel(1 << 20, 4), num_cores=0)


class TestReports:
    def base_report(self, m=None, cycles=1_000_000):
        m = m or model()
        return m.report(
            instructions=2_000_000,
            cycles=cycles,
            l1_accesses=600_000,
            l2_hits=60_000,
            l2_misses=12_000,
            l2_writebacks=4_000,
        )

    def test_metrics_consistent(self):
        rep = self.base_report()
        assert rep.ipc == pytest.approx(2.0)
        assert rep.bips > 0
        assert rep.watts > 0
        assert rep.bips_per_watt == pytest.approx(rep.bips / rep.watts, rel=1e-6)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            model().report(
                instructions=-1, cycles=1, l1_accesses=0, l2_hits=0, l2_misses=0
            )

    def test_more_misses_cost_more_energy(self):
        m = model()
        low = m.report(1_000_000, 1_000_000, 300_000, 50_000, 1_000)
        high = m.report(1_000_000, 1_000_000, 300_000, 50_000, 40_000)
        assert high.energy_joules > low.energy_joules

    def test_walk_activity_costs_energy(self):
        m = model(levels=3)
        quiet = m.report(1_000_000, 1_000_000, 300_000, 50_000, 10_000)
        walky = m.report(
            1_000_000, 1_000_000, 300_000, 50_000, 10_000,
            walk_tag_reads=520_000, relocations=14_000,
        )
        assert walky.energy_joules > quiet.energy_joules
        # Walks are tag reads: the overhead is a small share of total.
        assert (walky.energy_joules - quiet.energy_joules) / quiet.energy_joules < 0.2

    def test_parallel_lookup_higher_hit_energy(self):
        serial = self.base_report(model(parallel=False))
        parallel = self.base_report(model(parallel=True))
        assert parallel.energy_joules > serial.energy_joules

    def test_zero_cycles_safe(self):
        rep = model().report(0, 0, 0, 0, 0)
        assert rep.bips == 0.0
        assert rep.watts == 0.0
        assert rep.bips_per_watt == 0.0
