"""Tests for the MESI-style directory."""

import pytest

from repro.sim import Directory


class TestFill:
    def test_read_fill_adds_sharer(self):
        d = Directory(4)
        assert d.fill(100, core=1, is_write=False) == []
        assert d.sharers(100) == {1}

    def test_multiple_readers_share(self):
        d = Directory(4)
        d.fill(100, 0, False)
        d.fill(100, 1, False)
        assert d.sharers(100) == {0, 1}
        assert d.is_shared(100)

    def test_write_fill_invalidates_others(self):
        d = Directory(4)
        d.fill(100, 0, False)
        d.fill(100, 1, False)
        victims = d.fill(100, 2, is_write=True)
        assert sorted(victims) == [0, 1]
        assert d.sharers(100) == {2}
        assert d.stats.invalidations_sent == 2

    def test_rejects_bad_core(self):
        with pytest.raises(ValueError):
            Directory(2).fill(1, core=5, is_write=False)


class TestUpgrade:
    def test_upgrade_invalidates_other_sharers(self):
        d = Directory(4)
        d.fill(7, 0, False)
        d.fill(7, 1, False)
        victims = d.upgrade(7, core=0)
        assert victims == [1]
        assert d.sharers(7) == {0}
        assert d.stats.upgrades == 1

    def test_upgrade_sole_owner_is_free(self):
        d = Directory(4)
        d.fill(7, 0, False)
        assert d.upgrade(7, 0) == []
        assert d.stats.upgrades == 0

    def test_upgrade_nonsharer_rejected(self):
        d = Directory(4)
        d.fill(7, 0, False)
        with pytest.raises(KeyError):
            d.upgrade(7, core=1)


class TestEvictions:
    def test_l1_eviction_silent(self):
        d = Directory(4)
        d.fill(9, 0, False)
        d.fill(9, 1, False)
        d.l1_eviction(9, 0)
        assert d.sharers(9) == {1}

    def test_l1_eviction_last_sharer_clears_entry(self):
        d = Directory(4)
        d.fill(9, 0, False)
        d.l1_eviction(9, 0)
        assert d.sharers(9) == frozenset()

    def test_l1_eviction_untracked_tolerated(self):
        Directory(4).l1_eviction(42, 0)  # no raise

    def test_inclusion_invalidate_clears_all(self):
        d = Directory(4)
        for c in (0, 2, 3):
            d.fill(9, c, False)
        victims = d.inclusion_invalidate(9)
        assert victims == [0, 2, 3]
        assert d.sharers(9) == frozenset()
        assert d.stats.invalidations_sent == 3

    def test_inclusion_invalidate_missing_is_empty(self):
        assert Directory(4).inclusion_invalidate(9) == []
