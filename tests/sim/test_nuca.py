"""Tests for the optional NUCA distance-based latency model."""

import dataclasses

import pytest

from repro.sim import CMPConfig, TraceDrivenRunner
from repro.workloads import get_workload


class TestLatencyFunction:
    def test_default_is_fixed_average(self):
        cfg = CMPConfig()
        lats = {
            cfg.l1_to_bank_latency(core, bank)
            for core in range(cfg.num_cores)
            for bank in range(cfg.l2_banks)
        }
        assert lats == {cfg.l1_to_l2_latency}

    def test_hops_create_spread(self):
        cfg = CMPConfig(nuca_hop_cycles=1.0)
        near = cfg.l1_to_bank_latency(core=0, bank=0)
        far = cfg.l1_to_bank_latency(core=0, bank=7)
        assert far > near

    def test_mean_close_to_configured_average(self):
        cfg = CMPConfig(nuca_hop_cycles=1.0)
        lats = [
            cfg.l1_to_bank_latency(core, bank)
            for core in range(cfg.num_cores)
            for bank in range(cfg.l2_banks)
        ]
        mean = sum(lats) / len(lats)
        assert mean == pytest.approx(cfg.l1_to_l2_latency, abs=1.0)

    def test_latency_floor(self):
        cfg = CMPConfig(l1_to_l2_latency=1, nuca_hop_cycles=3.0)
        for bank in range(8):
            assert cfg.l1_to_bank_latency(0, bank) >= 1


class TestEndToEnd:
    def test_nuca_changes_timing_not_misses(self):
        base = CMPConfig()
        nuca = dataclasses.replace(base, nuca_hop_cycles=2.0)
        workload = get_workload("gcc")
        r_base = TraceDrivenRunner(
            base, workload, instructions_per_core=800, seed=3
        ).replay(base)
        r_nuca = TraceDrivenRunner(
            nuca, workload, instructions_per_core=800, seed=3
        ).replay(nuca)
        assert r_base.l2_misses == r_nuca.l2_misses  # functional identity
        assert r_base.total_cycles != r_nuca.total_cycles  # timing differs


class TestBankQueueing:
    def test_disabled_by_default(self):
        from repro.sim import TraceDrivenRunner
        from repro.workloads import get_workload

        cfg = CMPConfig()
        r = TraceDrivenRunner(
            cfg, get_workload("gcc"), instructions_per_core=600, seed=3
        ).replay(cfg)
        assert r.bank_queueing_cycles == 0

    def test_contention_slows_and_is_counted(self):
        import dataclasses

        from repro.sim import TraceDrivenRunner
        from repro.workloads import get_workload

        base = CMPConfig()
        contended = dataclasses.replace(base, bank_queueing=True)
        workload = get_workload("canneal")
        r_base = TraceDrivenRunner(
            base, workload, instructions_per_core=800, seed=3
        ).replay(base)
        r_cont = TraceDrivenRunner(
            contended, workload, instructions_per_core=800, seed=3
        ).replay(contended)
        assert r_cont.bank_queueing_cycles > 0
        assert r_cont.total_cycles >= r_base.total_cycles
        assert r_cont.l2_misses == r_base.l2_misses  # functional identity

    def test_design_level_candidate_limit(self):
        from repro.sim import L2DesignConfig, TraceDrivenRunner
        from repro.workloads import get_workload

        cfg = CMPConfig()
        runner = TraceDrivenRunner(
            cfg, get_workload("canneal"), instructions_per_core=800, seed=3
        )
        full = runner.replay(
            cfg.with_design(L2DesignConfig(kind="z", ways=4, levels=3))
        )
        capped = runner.replay(
            cfg.with_design(
                L2DesignConfig(kind="z", ways=4, levels=3, candidate_limit=8)
            )
        )
        assert capped.walk_tag_reads < full.walk_tag_reads

    def test_candidate_limit_rejected_for_sa(self):
        import pytest

        from repro.sim import L2DesignConfig

        with pytest.raises(ValueError):
            L2DesignConfig(kind="sa", candidate_limit=8)
