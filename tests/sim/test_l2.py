"""Tests for the banked L2."""

import pytest

from repro.assoc import TrackedPolicy
from repro.sim import BankedL2, CMPConfig, L2DesignConfig


def small_cfg(**kw):
    design = kw.pop("design", L2DesignConfig(kind="sa", ways=4, hash_kind="h3"))
    return CMPConfig(l2_blocks=1024, l2_banks=8, l2_design=design, **kw)


class TestBanking:
    def test_bank_partitioning(self):
        l2 = BankedL2(small_cfg())
        for addr in range(100):
            assert l2.bank_for(addr) == addr % 8

    def test_access_routes_to_bank(self):
        l2 = BankedL2(small_cfg())
        out = l2.access(17, is_write=False)
        assert out.bank == 1
        assert l2.bank_accesses[1] == 1
        assert 17 in l2

    def test_per_bank_hash_functions_differ(self):
        cfg = small_cfg(design=L2DesignConfig(kind="z", ways=4, levels=2))
        l2 = BankedL2(cfg)
        h0 = l2.banks[0].array.hashes[0]
        h1 = l2.banks[1].array.hashes[0]
        assert any(h0(x) != h1(x) for x in range(1, 200))


class TestPolicies:
    @pytest.mark.parametrize(
        "policy", ["lru", "bucketed-lru", "fifo", "lfu", "random", "srrip"]
    )
    def test_policy_construction(self, policy):
        import dataclasses

        design = dataclasses.replace(small_cfg().l2_design, policy=policy)
        l2 = BankedL2(small_cfg(design=design))
        l2.access(1, False)
        l2.access(1, False)
        assert l2.hits == 1

    def test_opt_without_trace_rejected(self):
        import dataclasses

        design = dataclasses.replace(small_cfg().l2_design, policy="opt")
        with pytest.raises(ValueError):
            BankedL2(small_cfg(design=design))

    def test_opt_with_trace(self):
        import dataclasses

        design = dataclasses.replace(small_cfg().l2_design, policy="opt")
        cfg = small_cfg(design=design)
        traces = [[] for _ in range(8)]
        stream = [8 * i for i in range(5)] + [0, 8]
        for addr in stream:
            traces[addr % 8].append(addr)
        l2 = BankedL2(cfg, opt_traces=traces)
        for addr in stream:
            l2.access(addr, False)
        assert l2.hits == 2  # 0 and 8 re-referenced

    def test_policy_wrapper_applied(self):
        l2 = BankedL2(small_cfg(), policy_wrapper=TrackedPolicy)
        assert all(isinstance(b.policy, TrackedPolicy) for b in l2.banks)


class TestWritebacks:
    def test_writeback_hit_marks_dirty(self):
        l2 = BankedL2(small_cfg())
        l2.access(24, False)
        assert l2.writeback(24) is True
        assert l2.banks[0].is_dirty(24)
        assert l2.writeback_hits == 1

    def test_writeback_does_not_touch_policy(self):
        l2 = BankedL2(small_cfg())
        l2.access(0, False)
        l2.access(8, False)  # same bank
        stamp_before = l2.banks[0].policy.score(0)
        l2.writeback(0)
        assert l2.banks[0].policy.score(0) == stamp_before

    def test_writeback_miss_forwards_to_memory(self):
        l2 = BankedL2(small_cfg())
        assert l2.writeback(40) is False
        assert l2.writeback_misses == 1
        assert l2.writebacks_to_memory == 1


class TestAggregates:
    def test_stats_roll_up(self):
        l2 = BankedL2(small_cfg())
        for addr in range(64):
            l2.access(addr, False)
        for addr in range(64):
            l2.access(addr, False)
        assert l2.accesses == 128
        assert l2.hits == 64
        assert l2.misses == 64

    def test_total_tracks_bank_stats_swap(self):
        # Regression: total() memoizes per-bank counter refs; swapping a
        # bank's stats object mid-run (registry re-scoping) must clear
        # the memo or aggregates keep reading the orphaned counters.
        from repro.core.controller import CacheStats

        l2 = BankedL2(small_cfg())
        for addr in range(64):
            l2.access(addr, False)
        assert l2.accesses == 64  # memo now holds the original counters
        for bank in l2.banks:
            bank.stats = CacheStats()
        assert l2.accesses == 0
        for addr in range(16):
            l2.access(addr, False)
        assert l2.accesses == 16

    def test_walk_stats_for_zcache_only(self):
        sa = BankedL2(small_cfg())
        assert sa.walk_stats() is None
        z = BankedL2(small_cfg(design=L2DesignConfig(kind="z", ways=4, levels=2)))
        for addr in range(2000):
            z.access(addr, False)
        ws = z.walk_stats()
        assert ws is not None
        assert ws.walks == 2000


class TestBankIndex:
    def test_shared_mapping_function(self):
        from repro.sim.l2 import bank_index

        l2 = BankedL2(small_cfg())
        for addr in (0, 1, 7, 8, 1023, 65537):
            assert l2.bank_for(addr) == bank_index(addr, 8)

    def test_captured_trace_uses_same_mapping(self):
        # The bug this guards against: CapturedTrace re-implementing the
        # interleaving locally and drifting from BankedL2's.
        import repro.sim.cmp as cmp_mod
        import repro.sim.l2 as l2_mod

        assert cmp_mod.bank_index is l2_mod.bank_index
