"""Tests for CMP and L2 design configuration."""

import pytest

from repro.sim import CMPConfig, L2DesignConfig


class TestL2Design:
    def test_labels(self):
        assert L2DesignConfig(kind="z", ways=4, levels=3).label() == "Z4/52-S"
        assert L2DesignConfig(kind="skew", ways=4).label() == "SK-4-S"
        assert (
            L2DesignConfig(kind="sa", ways=16, hash_kind="h3").label()
            == "SA-16h-S"
        )
        assert (
            L2DesignConfig(kind="sa", ways=4, hash_kind="bitsel",
                           parallel_lookup=True).label()
            == "SA-4-P"
        )

    def test_rejects_levels_on_sa(self):
        with pytest.raises(ValueError):
            L2DesignConfig(kind="sa", levels=2)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            L2DesignConfig(kind="victim")


class TestCMPConfig:
    def test_default_geometry_consistent(self):
        cfg = CMPConfig()
        assert cfg.bank_blocks * cfg.l2_banks == cfg.l2_blocks
        assert cfg.bank_lines_per_way * cfg.l2_design.ways == cfg.bank_blocks

    def test_paper_scale_is_table1(self):
        cfg = CMPConfig.paper_scale()
        assert cfg.l2_blocks * cfg.line_bytes == 8 << 20
        assert cfg.l1_blocks * cfg.line_bytes == 32 << 10
        assert cfg.num_cores == 32
        assert cfg.l2_banks == 8
        assert cfg.mem_latency == 200

    def test_line_transfer_cycles(self):
        # 64 GB/s over 4 MCs at 2 GHz: 8 B/cycle/MC -> 8 cycles per line.
        assert CMPConfig().line_transfer_cycles == pytest.approx(8.0)

    def test_rejects_nonsquare_geometry(self):
        with pytest.raises(ValueError):
            CMPConfig(l2_blocks=1000)  # not divisible into 8 banks cleanly

    def test_with_design(self):
        cfg = CMPConfig()
        z = L2DesignConfig(kind="z", ways=4, levels=2)
        cfg2 = cfg.with_design(z)
        assert cfg2.l2_design == z
        assert cfg.l2_design.kind == "sa"  # original untouched

    def test_design_must_fit_banks(self):
        with pytest.raises(ValueError):
            # 512-block banks cannot hold 3-way power-of-two ways.
            CMPConfig(l2_design=L2DesignConfig(kind="sa", ways=3))
