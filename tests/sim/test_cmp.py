"""Tests for the CMP simulator (full and trace-driven modes)."""

import pytest

from repro.sim import CMPConfig, CMPSimulator, L2DesignConfig, TraceDrivenRunner
from repro.workloads import get_workload

CFG = CMPConfig()
INSTR = 1200  # per core; small but enough to exercise everything


def small_sim(workload="gcc", design=None, **kw):
    cfg = CFG.with_design(design) if design else CFG
    return CMPSimulator(
        cfg, get_workload(workload), instructions_per_core=INSTR, seed=3, **kw
    )


class TestFullMode:
    def test_runs_and_accounts(self):
        res = small_sim().run()
        assert res.num_cores == 32
        assert all(i >= INSTR for i in res.instructions)
        assert all(c >= i for c, i in zip(res.cycles, res.instructions))
        assert res.l1_accesses > 0
        assert res.l2_hits + res.l2_misses == res.l1_misses

    def test_deterministic(self):
        a = small_sim().run()
        b = small_sim().run()
        assert a.cycles == b.cycles
        assert a.l2_misses == b.l2_misses

    def test_ipc_bounded_by_one_per_core(self):
        res = small_sim().run()
        for i, c in zip(res.instructions, res.cycles):
            assert i / c <= 1.0

    def test_mpki_properties(self):
        res = small_sim().run()
        assert res.l2_mpki >= 0
        assert res.l1_mpki >= res.l2_mpki

    def test_opt_policy_rejected_in_full_mode(self):
        design = L2DesignConfig(kind="sa", ways=4, policy="opt")
        with pytest.raises(ValueError):
            small_sim(design=design)

    def test_coherence_active_for_shared_workload(self):
        res = small_sim(workload="streamcluster").run()
        assert res.coherence_invalidations > 0

    def test_bank_accesses_distributed(self):
        res = small_sim(workload="canneal").run()
        assert sum(1 for b in res.bank_accesses if b > 0) >= 6

    def test_zcache_walks_recorded(self):
        res = small_sim(design=L2DesignConfig(kind="z", ways=4, levels=2)).run()
        assert res.walk_tag_reads > 0
        assert res.label == "Z4/16-S"


class TestTraceMode:
    def make_runner(self, workload="gcc"):
        return TraceDrivenRunner(
            CFG, get_workload(workload), instructions_per_core=INSTR, seed=3
        )

    def test_capture_is_cached(self):
        runner = self.make_runner()
        assert runner.capture() is runner.capture()

    def test_replay_matches_full_mode_l1_stats(self):
        # Full mode feeds inclusion victims back into the L1s; trace
        # mode cannot, so L1 misses may differ by those few extra
        # invalidation-induced misses — accesses are identical.
        runner = self.make_runner()
        replayed = runner.replay(CFG)
        full = small_sim().run()
        assert replayed.l1_accesses == full.l1_accesses
        assert abs(replayed.l1_misses - full.l1_misses) <= max(
            10, full.coherence_invalidations
        )

    def test_replay_close_to_full_mode(self):
        # Trace mode drops the inclusion-victim feedback, so MPKI and
        # IPC differ slightly — but must stay close.
        runner = self.make_runner()
        replayed = runner.replay(CFG)
        full = small_sim().run()
        assert replayed.l2_misses == pytest.approx(full.l2_misses, rel=0.15)
        assert replayed.aggregate_ipc == pytest.approx(
            full.aggregate_ipc, rel=0.15
        )

    def test_replay_designs_share_capture(self):
        runner = self.make_runner()
        a = runner.replay(CFG)
        b = runner.replay(
            CFG.with_design(L2DesignConfig(kind="z", ways=4, levels=2))
        )
        assert a.l1_misses == b.l1_misses  # same captured stream
        assert a.label != b.label

    def test_opt_replay_runs_and_beats_lru(self):
        runner = self.make_runner(workload="soplex")
        import dataclasses

        lru = runner.replay(CFG)
        opt = runner.replay(
            CFG.with_design(
                dataclasses.replace(CFG.l2_design, policy="opt")
            )
        )
        assert opt.l2_misses <= lru.l2_misses

    def test_bank_demand_traces_partition(self):
        runner = self.make_runner()
        captured = runner.capture()
        traces = captured.bank_demand_traces(8)
        total = sum(len(t) for t in traces)
        misses = sum(1 for e in captured.events if e[0] == 0)
        assert total == misses
        for bank, trace in enumerate(traces):
            assert all(a % 8 == bank for a in trace)

    def test_cycles_at_least_instructions(self):
        res = self.make_runner().replay(CFG)
        for c, i in zip(res.cycles, res.instructions):
            assert c >= i


class TestLatencySensitivity:
    def test_parallel_lookup_improves_hit_latency_bound_workload(self):
        # ammp is L2-hit heavy: parallel lookup (6cy vs 8cy banks) must
        # not make it slower.
        runner = TraceDrivenRunner(
            CFG, get_workload("ammp"), instructions_per_core=INSTR, seed=3
        )
        serial = runner.replay(CFG)
        parallel = runner.replay(
            CFG.with_design(
                L2DesignConfig(kind="sa", ways=4, hash_kind="h3",
                               parallel_lookup=True)
            )
        )
        assert parallel.aggregate_ipc >= serial.aggregate_ipc

    def test_more_ways_higher_bank_latency(self):
        runner = TraceDrivenRunner(
            CFG, get_workload("gcc"), instructions_per_core=INSTR, seed=3
        )
        r4 = runner.replay(CFG)
        r32 = runner.replay(
            CFG.with_design(L2DesignConfig(kind="sa", ways=32, hash_kind="h3"))
        )
        assert r32.l2_bank_latency > r4.l2_bank_latency

    def test_zcache_keeps_4way_latency(self):
        runner = TraceDrivenRunner(
            CFG, get_workload("gcc"), instructions_per_core=INSTR, seed=3
        )
        r4 = runner.replay(CFG)
        z52 = runner.replay(
            CFG.with_design(L2DesignConfig(kind="z", ways=4, levels=3))
        )
        assert z52.l2_bank_latency == r4.l2_bank_latency
