"""Tests for the CMP simulator (full and trace-driven modes)."""

import pytest

from repro.sim import CMPConfig, CMPSimulator, L2DesignConfig, TraceDrivenRunner
from repro.workloads import get_workload

CFG = CMPConfig()
INSTR = 1200  # per core; small but enough to exercise everything


def small_sim(workload="gcc", design=None, **kw):
    cfg = CFG.with_design(design) if design else CFG
    return CMPSimulator(
        cfg, get_workload(workload), instructions_per_core=INSTR, seed=3, **kw
    )


class TestFullMode:
    def test_runs_and_accounts(self):
        res = small_sim().run()
        assert res.num_cores == 32
        assert all(i >= INSTR for i in res.instructions)
        assert all(c >= i for c, i in zip(res.cycles, res.instructions))
        assert res.l1_accesses > 0
        assert res.l2_hits + res.l2_misses == res.l1_misses

    def test_deterministic(self):
        a = small_sim().run()
        b = small_sim().run()
        assert a.cycles == b.cycles
        assert a.l2_misses == b.l2_misses

    def test_ipc_bounded_by_one_per_core(self):
        res = small_sim().run()
        for i, c in zip(res.instructions, res.cycles):
            assert i / c <= 1.0

    def test_mpki_properties(self):
        res = small_sim().run()
        assert res.l2_mpki >= 0
        assert res.l1_mpki >= res.l2_mpki

    def test_opt_policy_rejected_in_full_mode(self):
        design = L2DesignConfig(kind="sa", ways=4, policy="opt")
        with pytest.raises(ValueError):
            small_sim(design=design)

    def test_coherence_active_for_shared_workload(self):
        res = small_sim(workload="streamcluster").run()
        assert res.coherence_invalidations > 0

    def test_bank_accesses_distributed(self):
        res = small_sim(workload="canneal").run()
        assert sum(1 for b in res.bank_accesses if b > 0) >= 6

    def test_zcache_walks_recorded(self):
        res = small_sim(design=L2DesignConfig(kind="z", ways=4, levels=2)).run()
        assert res.walk_tag_reads > 0
        assert res.label == "Z4/16-S"


class TestTraceMode:
    def make_runner(self, workload="gcc"):
        return TraceDrivenRunner(
            CFG, get_workload(workload), instructions_per_core=INSTR, seed=3
        )

    def test_capture_is_cached(self):
        runner = self.make_runner()
        assert runner.capture() is runner.capture()

    def test_replay_matches_full_mode_l1_stats(self):
        # Full mode feeds inclusion victims back into the L1s; trace
        # mode cannot, so L1 misses may differ by those few extra
        # invalidation-induced misses — accesses are identical.
        runner = self.make_runner()
        replayed = runner.replay(CFG)
        full = small_sim().run()
        assert replayed.l1_accesses == full.l1_accesses
        assert abs(replayed.l1_misses - full.l1_misses) <= max(
            10, full.coherence_invalidations
        )

    def test_replay_close_to_full_mode(self):
        # Trace mode drops the inclusion-victim feedback, so MPKI and
        # IPC differ slightly — but must stay close.
        runner = self.make_runner()
        replayed = runner.replay(CFG)
        full = small_sim().run()
        assert replayed.l2_misses == pytest.approx(full.l2_misses, rel=0.15)
        assert replayed.aggregate_ipc == pytest.approx(
            full.aggregate_ipc, rel=0.15
        )

    def test_replay_designs_share_capture(self):
        runner = self.make_runner()
        a = runner.replay(CFG)
        b = runner.replay(
            CFG.with_design(L2DesignConfig(kind="z", ways=4, levels=2))
        )
        assert a.l1_misses == b.l1_misses  # same captured stream
        assert a.label != b.label

    def test_opt_replay_runs_and_beats_lru(self):
        runner = self.make_runner(workload="soplex")
        import dataclasses

        lru = runner.replay(CFG)
        opt = runner.replay(
            CFG.with_design(
                dataclasses.replace(CFG.l2_design, policy="opt")
            )
        )
        assert opt.l2_misses <= lru.l2_misses

    def test_bank_demand_traces_partition(self):
        runner = self.make_runner()
        captured = runner.capture()
        traces = captured.bank_demand_traces(8)
        total = sum(len(t) for t in traces)
        misses = sum(1 for e in captured.events if e[0] == 0)
        assert total == misses
        for bank, trace in enumerate(traces):
            assert all(a % 8 == bank for a in trace)

    def test_cycles_at_least_instructions(self):
        res = self.make_runner().replay(CFG)
        for c, i in zip(res.cycles, res.instructions):
            assert c >= i


class TestLatencySensitivity:
    def test_parallel_lookup_improves_hit_latency_bound_workload(self):
        # ammp is L2-hit heavy: parallel lookup (6cy vs 8cy banks) must
        # not make it slower.
        runner = TraceDrivenRunner(
            CFG, get_workload("ammp"), instructions_per_core=INSTR, seed=3
        )
        serial = runner.replay(CFG)
        parallel = runner.replay(
            CFG.with_design(
                L2DesignConfig(kind="sa", ways=4, hash_kind="h3",
                               parallel_lookup=True)
            )
        )
        assert parallel.aggregate_ipc >= serial.aggregate_ipc

    def test_more_ways_higher_bank_latency(self):
        runner = TraceDrivenRunner(
            CFG, get_workload("gcc"), instructions_per_core=INSTR, seed=3
        )
        r4 = runner.replay(CFG)
        r32 = runner.replay(
            CFG.with_design(L2DesignConfig(kind="sa", ways=32, hash_kind="h3"))
        )
        assert r32.l2_bank_latency > r4.l2_bank_latency

    def test_zcache_keeps_4way_latency(self):
        runner = TraceDrivenRunner(
            CFG, get_workload("gcc"), instructions_per_core=INSTR, seed=3
        )
        r4 = runner.replay(CFG)
        z52 = runner.replay(
            CFG.with_design(L2DesignConfig(kind="z", ways=4, levels=3))
        )
        assert z52.l2_bank_latency == r4.l2_bank_latency


class TestResultSerialization:
    def test_to_dict_round_trips(self):
        res = small_sim().run()
        clone = type(res).from_dict(res.to_dict())
        assert clone == res

    def test_from_captured_replays_identically(self):
        from repro.sim.cmp import TraceDrivenRunner as TDR

        runner = TDR(CFG, get_workload("gcc"), instructions_per_core=INSTR, seed=3)
        captured = runner.capture()
        rehosted = TDR.from_captured(CFG, captured, seed=3)
        assert rehosted.replay(CFG) == runner.replay(CFG)


class TestMemoryQueueingParity:
    """Execution mode must stamp memory-channel demands at the same
    (post-latency) time replay does.

    The pre-fix bug — ``channel.demand(addr, cycles[core])`` with the
    pre-stall timestamp — cancels out under a uniform per-miss latency
    (the clock just runs a constant amount ahead), so the probe uses
    NUCA hop latencies to make the per-miss shift *vary* by bank, which
    makes the two timestamp conventions produce different queueing
    delays and different final cycle counts.
    """

    def make_probe(self):
        from dataclasses import replace

        from repro.workloads.spec import WorkloadSpec

        spec = WorkloadSpec(
            name="parity-probe", suite="mix", multithreaded=False,
            mem_ratio=0.8, write_frac=0.3,
            patterns=(((1.0, {"kind": "uniform", "footprint_abs": 48}),)),
        )
        # SA-32 so the private 48-line footprints never evict (no
        # inclusion feedback, the one modelled divergence between
        # modes); 8 B/cycle memory so the channel genuinely queues;
        # NUCA hops so per-miss latency varies by bank.
        cfg = replace(
            CMPConfig().with_design(
                L2DesignConfig(kind="sa", ways=32, hash_kind="h3")
            ),
            mem_bytes_per_cycle=8.0,
            nuca_hop_cycles=2.0,
        )
        return cfg, spec

    def test_execution_and_replay_agree_cycle_for_cycle(self):
        cfg, spec = self.make_probe()
        full = CMPSimulator(cfg, spec, instructions_per_core=2000, seed=7).run()
        rep = TraceDrivenRunner(
            cfg, spec, instructions_per_core=2000, seed=7
        ).replay(cfg)
        assert full.l2_misses == rep.l2_misses
        assert full.cycles == rep.cycles

    def test_contention_actually_exercised(self):
        # Guard against the probe silently losing its memory-channel
        # pressure: with queueing disabled the run must get faster.
        from dataclasses import replace

        cfg, spec = self.make_probe()
        contended = CMPSimulator(
            cfg, spec, instructions_per_core=2000, seed=7
        ).run()
        uncontended = CMPSimulator(
            replace(cfg, mem_bytes_per_cycle=1e9), spec,
            instructions_per_core=2000, seed=7,
        ).run()
        assert max(contended.cycles) > max(uncontended.cycles)
