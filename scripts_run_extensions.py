"""Supplementary experiment runs: the extension artifacts.

Companion to ``scripts_run_all.py`` (the paper's own tables/figures);
this records the Section I / III-D / IV-C / VIII extension experiments
into ``results/``.
"""

import contextlib
import io
import time


def run(name, fn):
    t0 = time.time()
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        fn()
    with open(f"results/{name}.txt", "w") as f:
        f.write(buf.getvalue())
    print(f"{name} done in {time.time() - t0:.0f}s", flush=True)


from repro.experiments import buffering, conflict, fig1, hashquality, pressure

run("fig1", fig1.main)
run("buffering", buffering.main)
run("conflict", conflict.main)
run("hashquality", hashquality.main)
run("pressure", pressure.main)
print("EXTENSIONS DONE", flush=True)
