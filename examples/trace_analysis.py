#!/usr/bin/env python3
"""Characterise a workload before choosing a cache for it.

Shows the trace-analysis toolkit: capture a workload proxy's stream to
a file, load it back, and compute the reuse profile — whose miss-rate
curve predicts how any LRU cache size will behave *before* running a
single cache simulation. The same tools work on your own traces (the
format is one `gap address-hex r|w` line per access).

Run: ``python examples/trace_analysis.py``
"""

import itertools
import tempfile
from pathlib import Path

from repro.core import Cache, FullyAssociativeArray
from repro.replacement import LRU
from repro.workloads import (
    get_workload,
    load_trace,
    reuse_profile,
    save_trace,
    working_set_curve,
)

ACCESSES = 40_000


def main() -> None:
    spec = get_workload("omnetpp")
    stream = itertools.islice(spec.core_stream(0, 4096, seed=7), ACCESSES)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "omnetpp-core0.trace.gz"
        count = save_trace(path, stream, comment="omnetpp proxy, core 0")
        print(f"captured {count} accesses to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB compressed)")
        addresses = [acc.address for acc in load_trace(path)]

    profile = reuse_profile(addresses)
    print(f"footprint: {profile.footprint} blocks "
          f"({profile.footprint * 64 // 1024} KiB)")
    print(f"cold misses: {profile.cold_misses} "
          f"({profile.cold_misses / profile.accesses:.1%} of accesses)")
    print(f"median reuse distance: {profile.median_reuse_distance():.0f} blocks")

    print("\nLRU miss-rate curve (from one histogram, no simulation):")
    capacities = [16, 64, 256, 1024, 4096]
    for cap, rate in zip(capacities, profile.miss_rate_curve(capacities)):
        bar = "#" * int(rate * 40)
        print(f"  {cap:5d} blocks: {rate:6.1%} {bar}")

    # The Mattson property: the analytic curve equals a simulated
    # fully-associative LRU cache. Verify one point.
    cache = Cache(FullyAssociativeArray(256), LRU())
    for addr in addresses:
        cache.access(addr)
    print(f"\ncross-check at 256 blocks: curve says "
          f"{profile.miss_rate_at(256):.4f}, simulation says "
          f"{cache.stats.miss_rate:.4f}")

    print("\nworking-set curve (distinct blocks per 4k-access window):")
    for i, ws in enumerate(working_set_curve(addresses, 4_000)):
        print(f"  window {i}: {ws}")


if __name__ == "__main__":
    main()
