#!/usr/bin/env python3
"""Future-work exploration: a highly-associative zcache TLB.

The paper's conclusion floats zcaches for "highly associative
first-level caches and TLBs". A TLB is tiny (64-128 entries), so two of
the paper's small-structure concerns become visible, and this example
measures both:

1. *walk repeats* are common when the walk covers a large fraction of
   the structure — the Bloom-filter extension (Section III-D) prunes
   them;
2. page-aligned access patterns make un-hashed set-associative TLBs
   conflict badly, while the zcache's associativity comes from its
   candidate count.

Run: ``python examples/tlb_zcache.py``
"""

import random

from repro import LRU, Cache, SetAssociativeArray, ZCacheArray

ENTRIES = 64  # a typical first-level TLB
PAGES = 1 << 16


def tlb_trace(n, seed=3):
    """Page-number stream: hot pages + strided scans of big arrays.

    Strides of array walks are page-aligned, the classic conflict
    pattern for low-associativity TLBs.
    """
    rng = random.Random(seed)
    hot = [rng.randrange(PAGES) for _ in range(24)]
    for i in range(n):
        r = rng.random()
        if r < 0.70:
            yield hot[rng.randrange(len(hot))]
        elif r < 0.90:
            yield (i * 16) % PAGES  # strided array walk
        else:
            yield rng.randrange(PAGES)


def run(label, array):
    tlb = Cache(array, LRU(), name=label)
    for page in tlb_trace(200_000):
        tlb.access(page)
    return tlb


def main() -> None:
    configs = [
        ("SA-4 TLB", SetAssociativeArray(4, ENTRIES // 4)),
        ("SA-4 TLB (H3)", SetAssociativeArray(4, ENTRIES // 4, hash_kind="h3")),
        ("Z4/16 TLB", ZCacheArray(4, ENTRIES // 4, levels=2)),
        ("Z4/52 TLB", ZCacheArray(4, ENTRIES // 4, levels=3)),
        (
            "Z4/52 TLB + bloom",
            ZCacheArray(4, ENTRIES // 4, levels=3, repeat_filter="bloom"),
        ),
        (
            "Z4/52 TLB + exact",
            ZCacheArray(4, ENTRIES // 4, levels=3, repeat_filter="exact"),
        ),
    ]
    print(
        f"{'config':18s} {'miss rate':>10s} {'cand/walk':>10s} "
        f"{'tag reads/walk':>15s}"
    )
    for label, array in configs:
        tlb = run(label, array)
        stats = getattr(tlb.array, "stats", None)
        if stats and stats.walks:
            cands = f"{stats.mean_candidates_per_walk:10.2f}"
            reads = f"{stats.tag_reads / stats.walks:15.2f}"
        else:
            cands, reads = " " * 10, " " * 15
        print(f"{label:18s} {tlb.stats.miss_rate:10.4f} {cands} {reads}")
    print()
    print("In a 64-entry structure a deep walk revisits entries constantly;")
    print("the Bloom filter stops expanding through repeated addresses, so")
    print("the filtered designs examine fewer candidates (and spend fewer")
    print("tag reads) for nearly the same miss rate — Section III-D's point.")


if __name__ == "__main__":
    main()
