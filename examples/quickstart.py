#!/usr/bin/env python3
"""Quickstart: build a zcache, run traffic, inspect the walk.

Demonstrates the core API in under a minute:

1. a 4-way zcache with a 3-level walk (Z4/52) next to the set-
   associative cache it replaces;
2. hit/miss behaviour and walk statistics;
3. the Section III-B figures of merit for the configuration.

Run: ``python examples/quickstart.py``
"""

import itertools
import random

from repro import LRU, Cache, SetAssociativeArray, ZCacheArray
from repro.core.zcache import replacement_candidates
from repro.workloads.patterns import mixed, strided, zipf


def main() -> None:
    # Two caches of identical capacity (4 ways x 1024 lines = 256 KB of
    # 64 B blocks): a conventional hashed set-associative cache and a
    # zcache whose replacement walk collects 52 candidates.
    setassoc = Cache(
        SetAssociativeArray(num_ways=4, lines_per_way=1024, hash_kind="h3"),
        LRU(),
        name="SA-4 (hashed)",
    )
    zcache = Cache(
        ZCacheArray(num_ways=4, lines_per_way=1024, levels=3),
        LRU(),
        name="Z4/52",
    )
    print(
        f"Z4/52 nominal candidates: "
        f"{replacement_candidates(num_ways=4, levels=3)} "
        "(4 ways, 3-level walk)"
    )

    # Traffic with structure an LRU cache can exploit — a hot zipf
    # region plus a strided scan just over capacity — so replacement
    # *quality* (associativity) shows up in the miss rate.
    rng = random.Random(42)
    blocks = 4 * 1024
    trace = mixed(
        [
            (0.5, zipf(blocks * 2, skew=1.2, seed=7)),
            (0.5, strided(int(blocks * 1.25), stride=64, start=1)),
        ],
        seed=42,
    )
    for addr in itertools.islice(trace, 300_000):
        is_write = rng.random() < 0.25
        setassoc.access(addr, is_write)
        zcache.access(addr, is_write)

    for cache in (setassoc, zcache):
        s = cache.stats
        print(
            f"{cache.name:14s} accesses={s.accesses} "
            f"miss rate={s.miss_rate:.4f} writebacks={s.writebacks}"
        )

    ws = zcache.array.stats
    print(
        f"zcache walks: {ws.walks}, mean candidates/walk="
        f"{ws.mean_candidates_per_walk:.1f}, mean relocations/walk="
        f"{ws.mean_relocations_per_walk:.2f}, repeats/walk="
        f"{ws.repeats / max(ws.walks, 1):.3f}"
    )
    improvement = setassoc.stats.miss_rate / zcache.stats.miss_rate
    print(f"zcache miss-rate improvement over SA-4: {improvement:.3f}x")


if __name__ == "__main__":
    main()
