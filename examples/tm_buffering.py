#!/usr/bin/env python3
"""Buffering capacity: the paper's Section I motivation, measured.

Transactional memory, thread-level speculation, deterministic replay
and event-monitoring proposals all "use caches to buffer or pin
specific blocks. Low associativity makes it difficult to buffer large
sets of blocks, limiting the applicability of these schemes or
requiring expensive fall-back mechanisms."

This example plays a TM-like scenario: a transaction's write set must
stay pinned in the cache until commit. We grow the write set until the
cache overflows (the fall-back event) and report how much of each
design's capacity is usable — associativity, not capacity, is the
limit.

Run: ``python examples/tm_buffering.py``
"""

import random

from repro import (
    LRU,
    Cache,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)

BLOCKS = 1024  # every design has the same capacity
TRIALS = 5


def designs():
    yield "SA-4 (no hash)", lambda s: SetAssociativeArray(4, BLOCKS // 4)
    yield "SA-4 (H3)", lambda s: SetAssociativeArray(
        4, BLOCKS // 4, hash_kind="h3", hash_seed=s
    )
    yield "SA-32 (H3)", lambda s: SetAssociativeArray(
        32, BLOCKS // 32, hash_kind="h3", hash_seed=s
    )
    yield "skew-4", lambda s: SkewAssociativeArray(4, BLOCKS // 4, hash_seed=s)
    yield "Z4/16", lambda s: ZCacheArray(4, BLOCKS // 4, levels=2, hash_seed=s)
    yield "Z4/52", lambda s: ZCacheArray(4, BLOCKS // 4, levels=3, hash_seed=s)


def pinnable_blocks(array_factory, seed: int) -> int:
    """Pin random blocks until the first overflow; return the count."""
    cache = Cache(array_factory(seed), LRU())
    rng = random.Random(seed)
    pinned = 0
    while True:
        addr = rng.randrange(1 << 30)
        result = cache.access(addr, is_write=True)
        if result.bypassed:
            return pinned
        cache.pin(addr)
        pinned += 1


def main() -> None:
    print(f"Write-set blocks pinnable before overflow ({BLOCKS}-block caches,")
    print(f"mean of {TRIALS} random write sets):")
    print(f"{'design':16s} {'pinnable':>9s} {'of capacity':>12s}")
    for name, factory in designs():
        counts = [pinnable_blocks(factory, seed) for seed in range(TRIALS)]
        mean = sum(counts) / len(counts)
        print(f"{name:16s} {mean:9.0f} {mean / BLOCKS:11.1%}")
    print()
    print("A 4-way set-associative cache overflows once any one set holds")
    print("four pinned blocks — a birthday-bound, far below capacity. The")
    print("zcache keeps pinning until nearly full: its 52 candidates (and")
    print("its ability to relocate pinned blocks) find a home for almost")
    print("every block, which is exactly why buffering proposals want")
    print("high associativity without 52 physical ways.")


if __name__ == "__main__":
    main()
