#!/usr/bin/env python3
"""The paper's analytical framework, applied to your own cache design.

Walks through Section IV end to end:

1. wrap any replacement policy in a TrackedPolicy;
2. run a workload and collect the eviction-priority distribution;
3. compare against the uniformity assumption F_A(x) = x^n;
4. rank several designs by "effective candidates".

Run: ``python examples/associativity_analysis.py``
"""

import random

from repro import (
    LRU,
    Cache,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    TrackedPolicy,
    ZCacheArray,
    expected_priority,
)

BLOCKS = 4096
ACCESSES = 150_000


def designs():
    """Cache arrays of equal capacity, in ascending design ambition."""
    yield "direct-mapped", 1, SetAssociativeArray(1, BLOCKS, hash_kind="h3")
    yield "SA-4 (no hash)", 4, SetAssociativeArray(4, BLOCKS // 4)
    yield "SA-4 (H3)", 4, SetAssociativeArray(4, BLOCKS // 4, hash_kind="h3")
    yield "skew-4", 4, SkewAssociativeArray(4, BLOCKS // 4)
    yield "Z4/16", 16, ZCacheArray(4, BLOCKS // 4, levels=2)
    yield "Z4/52", 52, ZCacheArray(4, BLOCKS // 4, levels=3)
    yield "random-16", 16, RandomCandidatesArray(BLOCKS, 16)
    yield "fully-assoc", BLOCKS, FullyAssociativeArray(BLOCKS)


def mixed_trace(n, seed=7):
    """Strided + random mix: punishes un-hashed indexing."""
    rng = random.Random(seed)
    footprint = BLOCKS * 4
    for i in range(n):
        if i % 3 == 0:
            yield (i * 64) % footprint
        else:
            yield rng.randrange(footprint)


def main() -> None:
    print(f"{'design':16s} {'n':>5s} {'mean e':>8s} {'uniform':>8s} "
          f"{'eff.n':>7s} {'KS':>6s}")
    for name, n, array in designs():
        tracked = TrackedPolicy(LRU())
        cache = Cache(array, tracked, name=name)
        for addr in mixed_trace(ACCESSES):
            cache.access(addr)
        dist = tracked.distribution()
        print(
            f"{name:16s} {n:5d} {dist.mean():8.4f} "
            f"{expected_priority(n):8.4f} "
            f"{dist.effective_candidates():7.1f} "
            f"{dist.ks_to_uniformity(n):6.3f}"
        )
    print()
    print("Reading the table: 'mean e' is the average eviction priority")
    print("(1.0 = always evicts the globally best candidate); designs that")
    print("track the 'uniform' column obey F_A(x) = x^n, so their")
    print("associativity is set by n alone — the paper's central result.")


if __name__ == "__main__":
    main()
