#!/usr/bin/env python3
"""Adaptive associativity (the paper's closing future-work idea), live.

Section VIII: "it would be interesting to explore adaptive replacement
schemes that use the high associativity only when it improves
performance, saving cache bandwidth and energy when high associativity
is not needed."

This example runs a program through three phases — streaming (where no
eviction choice helps), thrash-with-reuse (where associativity pays),
then streaming again — and prints the adaptive controller's walk-depth
trajectory next to a fixed Z4/52's cost.

Run: ``python examples/adaptive_associativity.py``
"""

import itertools

from repro.core import AdaptiveZCache, Cache, ZCacheArray
from repro.replacement import LRU
from repro.workloads.patterns import mixed, sequential_scan, zipf

LINES = 256  # 4 ways x 256 lines = 1024-block cache
PHASE = 25_000


def phased_trace():
    """stream -> reuse -> stream."""
    stream = sequential_scan(LINES * 16)
    reuse = mixed(
        [(0.5, zipf(LINES * 8, skew=1.2, seed=1)),
         (0.5, sequential_scan(LINES * 5))],
        seed=2,
    )
    for source in (stream, reuse, stream):
        yield from itertools.islice(source, PHASE)


def main() -> None:
    fixed = Cache(ZCacheArray(4, LINES, levels=3, hash_seed=3), LRU())
    adaptive = AdaptiveZCache(
        ZCacheArray(4, LINES, levels=3, hash_seed=3), LRU(),
        epoch_misses=512,
    )
    for addr in phased_trace():
        fixed.access(addr)
    for addr in phased_trace():
        adaptive.access(addr)

    print("candidate-limit trajectory (one entry per 512-miss epoch):")
    limits = [limit for _e, limit, _f in adaptive.adaptive_stats.history]
    print("  " + " ".join(f"{limit:2d}" for limit in limits))
    print()
    fixed_reads = fixed.stats.walk_tag_reads / fixed.stats.misses
    adaptive_reads = adaptive.stats.walk_tag_reads / adaptive.stats.misses
    print(f"fixed Z4/52 : miss rate={fixed.stats.miss_rate:.4f} "
          f"walk tag reads/miss={fixed_reads:5.1f}")
    print(f"adaptive    : miss rate={adaptive.stats.miss_rate:.4f} "
          f"walk tag reads/miss={adaptive_reads:5.1f}")
    print()
    print("The controller collapses to the 4-candidate skew configuration")
    print("in the streaming phases (premature re-misses vanish), grows")
    print("back when the reuse phase makes eviction quality matter, and")
    print("matches the fixed design's miss rate at a fraction of the tag")
    print("bandwidth — associativity on demand, as Section VIII imagined.")


if __name__ == "__main__":
    main()
