#!/usr/bin/env python3
"""LLC design study: pick an L2 organisation for a 32-core CMP.

The workflow a downstream architect would run with this library:

1. choose a handful of workloads that bracket the design space
   (latency-bound, L2-hit-heavy, associativity-sensitive,
   miss-intensive);
2. sweep candidate L2 designs through the trace-driven simulator;
3. weigh IPC against hit energy and area with the Table II cost model.

Run: ``python examples/llc_design_study.py`` (about a minute).
"""

from repro.energy import CacheCostModel
from repro.experiments.fig5 import energy_report
from repro.sim import CMPConfig, L2DesignConfig, TraceDrivenRunner
from repro.workloads import get_workload

WORKLOADS = ["blackscholes", "ammp", "cactusADM", "canneal"]

CANDIDATES = [
    L2DesignConfig(kind="sa", ways=4, hash_kind="h3"),
    L2DesignConfig(kind="sa", ways=32, hash_kind="h3"),
    L2DesignConfig(kind="sa", ways=4, hash_kind="h3", parallel_lookup=True),
    L2DesignConfig(kind="z", ways=4, levels=3),
    L2DesignConfig(kind="z", ways=4, levels=3, parallel_lookup=True),
]

INSTRUCTIONS = 4_000


def main() -> None:
    cfg = CMPConfig()
    print(f"{'design':12s} {'lat':>4s} {'Ehit(nJ)':>9s} {'area':>7s}")
    for design in CANDIDATES:
        cost = CacheCostModel(
            1 << 20,
            design.ways,
            levels=design.levels if design.kind == "z" else None,
            parallel_lookup=design.parallel_lookup,
        )
        print(
            f"{design.label():12s} {cost.hit_latency_cycles():3d}cy "
            f"{cost.hit_energy():9.3f} {cost.area_mm2():6.2f}mm2"
        )
    print()

    header = f"{'workload':14s}" + "".join(
        f" | {d.label():>12s}" for d in CANDIDATES
    )
    print(header + "   (IPC / BIPS-per-W)")
    for name in WORKLOADS:
        runner = TraceDrivenRunner(
            cfg, get_workload(name), instructions_per_core=INSTRUCTIONS, seed=1
        )
        runner.capture()
        cells = []
        for design in CANDIDATES:
            res = runner.replay(cfg.with_design(design))
            rep = energy_report(res, design, cfg)
            cells.append(
                f" | {res.aggregate_ipc:5.2f}/{rep.bips_per_watt:6.3f}"
            )
        print(f"{name:14s}" + "".join(cells))

    print()
    print("Expected shape (paper Section VI): the Z4/52 matches the 4-way")
    print("cache's latency and hit energy while approaching the 32-way's")
    print("miss rate, so it wins on miss-intensive workloads without")
    print("penalising the latency-bound ones.")


if __name__ == "__main__":
    main()
