"""Full-scale experiment runs for EXPERIMENTS.md.

Set REPRO_JOBS=N to fan the design-sweep experiments (fig4, fig5)
across N worker processes (repro.experiments.parallel); results are
bit-identical to the serial run.
"""
import os, sys, time, io, contextlib

def run(name, fn):
    t0 = time.time()
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        fn()
    out = buf.getvalue()
    with open(f"results/{name}.txt", "w") as f:
        f.write(out)
    print(f"{name} done in {time.time()-t0:.0f}s", flush=True)

from repro.experiments import fig2, fig3, fig4, fig5, table1, table2, bandwidth, merit
from repro.experiments.runner import ExperimentScale

SCALE = ExperimentScale(instructions_per_core=6000, seed=1)
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

run("table1", table1.main)
run("table2", table2.main)
run("merit", merit.main)
run("fig2", fig2.main)

def fig3_main():
    for cell in fig3.run(scale=ExperimentScale(instructions_per_core=8000, seed=1)):
        print(cell.row())
run("fig3", fig3_main)

def fig4_main():
    result = fig4.run(scale=SCALE, policies=("opt", "lru"), jobs=JOBS)
    for s in sorted(result.series, key=lambda s: (s.metric, s.policy, s.design)):
        print(s.row())
    print()
    print("Per-workload detail (LRU, improvements vs SA-4h-S):")
    base = "SA-4h-S"
    for (w, pol), designs in sorted(result.raw.items()):
        if pol != "lru": continue
        b_mpki, b_ipc = designs[base]
        cells = []
        for d in ("SA-16h-S","SA-32h-S","SK-4-S","Z4/16-S","Z4/52-S"):
            m, i = designs[d]
            cells.append(f"{d}: mpki x{(b_mpki/m if m else 1):.3f} ipc x{(i/b_ipc if b_ipc else 1):.3f}")
        print(f"  {w:16s} baseMPKI={b_mpki:7.2f} | " + " | ".join(cells))
run("fig4", fig4_main)

def fig5_main():
    for cell in fig5.run(scale=SCALE, policies=("lru", "opt"), jobs=JOBS):
        print(cell.row())
run("fig5", fig5_main)

def bw_main():
    points = bandwidth.run(scale=SCALE)
    for p in sorted(points, key=lambda p: p.misses_per_cycle_per_bank):
        print("  " + p.row())
    print(f"max demand load/bank = {max(p.demand_load_per_bank for p in points):.4f}")
    print(f"max tag load/bank    = {max(p.tag_load_per_bank for p in points):.4f}")
    print(f"self-throttling correlation = {bandwidth.self_throttling_correlation(points):.3f}")
run("bandwidth", bw_main)
print("ALL DONE", flush=True)
