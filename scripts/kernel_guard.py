#!/usr/bin/env python3
"""CI guard: the turbo engine stays meaningfully faster than reference.

Runs the Fig. 2 hot loop (the ZTurbo tentpole workload) once per engine,
interleaved over several rounds with each series taking its min — the
same shared-runner noise discipline as ``scripts/obs_guard.py``. The
guarded quantity is the speedup ``reference_seconds / turbo_seconds``,
which is self-normalizing (both runs execute on the same machine in the
same process), so no calibration loop is needed.

The floor is 1.5x — deliberately below the >=2x recorded in
``BENCH_kernels.json`` at full scale, because CI runs a reduced scale
where fixed per-access overhead weighs more. Falling under the floor
means a change re-serialized a kernel hot path (or quietly disabled the
turbo engine), which is a regression even while bit-identity still
holds.

Usage::

    python scripts/kernel_guard.py [--accesses N] [--floor X]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_ACCESSES = 30_000
DEFAULT_BLOCKS = 1024
DEFAULT_FLOOR = 1.5


def fig2_seconds(engine: str, accesses: int, cache_blocks: int) -> float:
    """Seconds for one reduced-scale Fig. 2 run on ``engine``."""
    from repro.experiments.fig2 import run as fig2_run

    t0 = time.perf_counter()
    fig2_run(
        cache_blocks=cache_blocks, accesses=accesses, seed=0, engine=engine
    )
    return time.perf_counter() - t0


def measure(accesses: int, cache_blocks: int, rounds: int = 3) -> float:
    """Min-over-rounds speedup of turbo over reference."""
    fig2_seconds("turbo", accesses // 4, cache_blocks)  # warm imports/caches
    refs, turbos = [], []
    for _ in range(rounds):
        refs.append(fig2_seconds("reference", accesses, cache_blocks))
        turbos.append(fig2_seconds("turbo", accesses, cache_blocks))
    ref, turbo = min(refs), min(turbos)
    print(f"reference: {ref:.3f}s  turbo: {turbo:.3f}s")
    return ref / turbo


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    parser.add_argument("--cache-blocks", type=int, default=DEFAULT_BLOCKS)
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR)
    args = parser.parse_args(argv)

    speedup = measure(args.accesses, args.cache_blocks)
    print(f"kernel_guard: turbo speedup {speedup:.2f}x (floor {args.floor}x)")
    if speedup < args.floor:
        print("kernel_guard: turbo engine fell under the performance floor")
        return 1
    print("kernel_guard: turbo performance within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
