#!/usr/bin/env python3
"""CI guard: the parallel sweep engine must match the serial path bit
for bit.

Runs the same mini-sweep (two workloads, the Fig. 4 design matrix, LRU)
twice — once in-process and once across two worker processes — and
diffs every :class:`~repro.sim.cmp.CMPResult` field. Any divergence
means the deterministic-merge contract of
:mod:`repro.experiments.parallel` is broken and the figure sweeps can
no longer be trusted to parallelise safely.

Usage::

    python scripts/parallel_check.py                 # default mini-sweep
    python scripts/parallel_check.py --jobs 4 --instructions 2000
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.parallel import run_parallel_sweeps
from repro.experiments.runner import DESIGNS_FIG4, ExperimentScale


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--instructions", type=int, default=1000)
    parser.add_argument("--workloads", type=str, default="gcc,canneal")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    workloads = args.workloads.split(",")
    scale = ExperimentScale(
        instructions_per_core=args.instructions,
        workloads=tuple(workloads),
        seed=args.seed,
    )
    serial = run_parallel_sweeps(
        workloads=workloads, designs=DESIGNS_FIG4, scale=scale, jobs=1
    )
    parallel = run_parallel_sweeps(
        workloads=workloads, designs=DESIGNS_FIG4, scale=scale, jobs=args.jobs
    )

    failures = 0
    if parallel.degraded:
        print("FAIL: parallel sweep degraded to serial (worker pool died)")
        failures += 1
    for outcome in (serial, parallel):
        for o in outcome.failed:
            print(f"FAIL: job did not finish: {o.key}: {o.error}")
            failures += 1
    for w in workloads:
        s, p = serial.sweeps[w].results, parallel.sweeps[w].results
        if set(s) != set(p):
            print(f"FAIL: {w}: job sets differ: {set(s) ^ set(p)}")
            failures += 1
            continue
        for key in sorted(s):
            if s[key] != p[key]:
                print(f"FAIL: {w} {key}: serial and parallel results differ")
                print(f"  serial:   mpki={s[key].l2_mpki:.4f} "
                      f"cycles={s[key].total_cycles}")
                print(f"  parallel: mpki={p[key].l2_mpki:.4f} "
                      f"cycles={p[key].total_cycles}")
                failures += 1
    jobs_checked = sum(len(serial.sweeps[w].results) for w in workloads)
    if failures:
        print(f"parallel_check: {failures} failure(s)")
        return 1
    print(
        f"parallel_check OK: {jobs_checked} jobs bit-identical across "
        f"{args.jobs} workers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
