#!/usr/bin/env python3
"""CI guard: the ZScope null path must not slow the simulator down.

The observability layer's contract is that *not* asking for metrics or
traces costs (nearly) nothing: components built without an
``ObsContext`` register into private registries through cached Counter
objects and cache a disabled trace bus as ``None``. This script pins
that contract against ``benchmarks/obs_baseline.json``, which records
the same two tiny workloads measured on the commit *before* the layer
landed.

Raw seconds are machine-dependent, so everything is normalized by a
pure-Python calibration loop (dict/list churn, the same flavour as the
simulator hot loop): the guarded quantity is
``workload_seconds / calibration_seconds``. The check fails when a
ratio exceeds baseline x max_regression (1.15 -- slack for timer noise
on shared CI runners; the acceptance bar for the layer itself is <=5%).

A second, machine-relative claim guards the ZTrace span layer: the
same Fig. 2 run under an ``ObsContext`` with spans *enabled* must stay
within ``max_regression`` of the identical run with the disabled
``NULL_SPANS`` tracker. Both sides are measured interleaved on this
machine, so no baseline entry is needed — the ratio is its own
reference.

Usage::

    python scripts/obs_guard.py            # check against the baseline
    python scripts/obs_guard.py --update   # rewrite the baseline ratios
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "obs_baseline.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def calibration(iterations: int) -> float:
    """Seconds for the pure-python dict/list churn reference loop."""
    t0 = time.perf_counter()
    d: dict[int, int] = {}
    lst = [0] * 64
    for i in range(iterations):
        k = (i * 2654435761) & 0xFFFF
        d[k] = i
        if len(d) > 4096:
            d.pop(next(iter(d)))
        lst[i & 63] += 1
    return time.perf_counter() - t0


def fig2_seconds(cfg: dict) -> float:
    """Seconds for the small Fig. 2 run (no ObsContext: the null path)."""
    from repro.experiments.fig2 import run as fig2_run

    t0 = time.perf_counter()
    fig2_run(
        cache_blocks=cfg["cache_blocks"],
        accesses=cfg["accesses"],
        seed=cfg["seed"],
    )
    return time.perf_counter() - t0


def sweep_seconds(cfg: dict) -> float:
    """Seconds for the tiny design sweep (no ObsContext: the null path)."""
    from repro.experiments.runner import (
        ExperimentScale,
        baseline_design,
        run_design_sweep,
    )
    from repro.sim import L2DesignConfig

    designs = [baseline_design(), L2DesignConfig(kind="z", ways=4, levels=2)]
    scale = ExperimentScale(
        instructions_per_core=cfg["instructions_per_core"], seed=cfg["seed"]
    )
    t0 = time.perf_counter()
    run_design_sweep(cfg["workload"], designs, scale=scale)
    return time.perf_counter() - t0


def fig2_obs_seconds(cfg: dict, spans_on: bool) -> float:
    """Seconds for the Fig. 2 run under an ObsContext (spans on or off).

    Both sides carry the full metrics/trace/profiler context so the
    ratio isolates exactly what span tracing adds on top.
    """
    from repro.experiments.fig2 import run as fig2_run
    from repro.obs import ObsContext
    from repro.obs.spans import SpanTracker

    obs = ObsContext(
        spans=SpanTracker(seed=cfg["seed"]) if spans_on else None
    )
    t0 = time.perf_counter()
    fig2_run(
        cache_blocks=cfg["cache_blocks"],
        accesses=cfg["accesses"],
        seed=cfg["seed"],
        obs=obs,
    )
    elapsed = time.perf_counter() - t0
    obs.close()
    return elapsed


def span_overhead(baseline: dict, rounds: int = 5) -> float:
    """spans-on / spans-off wall-time ratio for the Fig. 2 workload.

    Rounds are interleaved (off, on, repeat) and each series takes its
    min, mirroring :func:`measure`, so shared-runner noise cancels.
    """
    cfg = baseline["workloads"]["fig2"]
    fig2_obs_seconds(cfg, spans_on=True)  # warm imports and caches
    offs, ons = [], []
    for _ in range(rounds):
        offs.append(fig2_obs_seconds(cfg, spans_on=False))
        ons.append(fig2_obs_seconds(cfg, spans_on=True))
    off, on = min(offs), min(ons)
    print(f"spans off: {off:.3f}s  spans on: {on:.3f}s")
    return on / off


def measure(baseline: dict, rounds: int = 5) -> dict[str, float]:
    """Calibration-normalized ratios for both guarded workloads.

    Rounds are interleaved (calibration, fig2, sweep, repeat) and each
    series takes its min, so a slow spell on a shared runner hits the
    numerator and denominator alike instead of skewing one ratio.
    """
    iters = baseline["calibration_iterations"]
    calibration(iters)  # warm caches/imports out of the measurement
    fig2_seconds(baseline["workloads"]["fig2"])
    calibs, fig2s, sweeps = [], [], []
    for _ in range(rounds):
        calibs.append(calibration(iters))
        fig2s.append(fig2_seconds(baseline["workloads"]["fig2"]))
        sweeps.append(sweep_seconds(baseline["workloads"]["sweep"]))
    calib, fig2, sweep = min(calibs), min(fig2s), min(sweeps)
    print(f"calibration: {calib:.3f}s  fig2: {fig2:.3f}s  sweep: {sweep:.3f}s")
    return {"fig2": fig2 / calib, "sweep": sweep / calib}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline ratios with this machine's measurement",
    )
    parser.add_argument(
        "--src", type=str, default=None, metavar="DIR",
        help="measure an alternative source tree (e.g. a git worktree of "
        "the pre-obs commit, to re-record the baseline)",
    )
    args = parser.parse_args(argv)
    if args.src:
        sys.path.insert(0, str(Path(args.src).resolve()))

    baseline = json.loads(BASELINE_PATH.read_text())
    ratios = measure(baseline)

    if args.update:
        baseline["ratios"] = {k: round(v, 4) for k, v in ratios.items()}
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline updated: {baseline['ratios']}")
        return 0

    limit = baseline["max_regression"]
    failed = False
    for name, ratio in ratios.items():
        ref = baseline["ratios"][name]
        rel = ratio / ref
        verdict = "ok" if rel <= limit else "REGRESSION"
        if rel > limit:
            failed = True
        print(
            f"{name}: ratio {ratio:.4f} vs baseline {ref:.4f} "
            f"({rel:.2f}x, limit {limit:.2f}x)  {verdict}"
        )
    span_rel = span_overhead(baseline)
    span_verdict = "ok" if span_rel <= limit else "REGRESSION"
    if span_rel > limit:
        failed = True
    print(
        f"spans: on/off ratio {span_rel:.2f}x (limit {limit:.2f}x)  "
        f"{span_verdict}"
    )
    if failed:
        print("obs_guard: observability overhead regressed beyond the budget")
        return 1
    print("obs_guard: null-path and span overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
