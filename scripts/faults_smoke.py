#!/usr/bin/env python3
"""CI gate: the ZFault campaign detects what it claims to detect.

Four checks, small geometries, well under a minute:

1. **No-fault control** — a golden replay of every design (plus a
   serve-layer replay) under the full sanitizer must finish with zero
   invariant violations and zero crashes. A detector that fires on
   clean traffic would poison every campaign verdict.
2. **One detection per detectable kind** — for each fault kind the
   taxonomy table (docs/faults.md) maps to a detector, a known-good
   planted case must classify ``detected`` with the expected violation
   kind: stale-walk -> walk-stale, drop-relocation -> conservation,
   misdirect-relocation -> map-desync, tag-flip -> duplicate-tag or
   map-desync (deep scan every access), drop-eviction-log ->
   payload-desync (shard consistency).
3. **Planted detector miss** — ``stamp-corrupt`` targets policy state,
   which no registered invariant covers. The mini-campaign must show
   zero detections for it on every design, and a direct planted case
   must surface as silent-wrong-victim. If this check ever fails
   because a policy-state invariant was added, update the taxonomy
   table and retire the miss deliberately — don't silence the gate.
4. **faultmin convergence** — delta debugging plus field shrinking
   must reduce a late stamp-corruption to a single earlier event while
   preserving the silent-wrong-victim verdict, and the emitted
   counterexample must replay to the same verdict from its JSON
   payload alone.

The mini-campaign also re-asserts the structural story: relocation
faults are benign on the set-associative baseline (no relocation
machinery to corrupt) and 100% detected on the zcache designs.

Exit 0 when everything holds, 1 with a message otherwise. The
full-size sweep lives in ``benchmarks/run_faults_baseline.py``; this
is the fast always-on gate.

Usage::

    python scripts/faults_smoke.py [--jobs N]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.campaign import CampaignConfig, run_campaign  # noqa: E402
from repro.faults.faultmin import (  # noqa: E402
    minimize_case,
    replay_counterexample,
)
from repro.faults.harness import (  # noqa: E402
    DESIGNS,
    FaultCase,
    run_case,
    run_replay,
    run_serve_replay,
)

#: shared small-geometry knobs for the planted detection cases
SEED = 7
ACCESSES = 800
LPW = 16

#: (case, acceptable violation kinds) per detectable fault kind.
#: tag-flip scans deep every access so the duplicate tag cannot hide
#: behind a policy crash; drop-eviction-log needs the larger serve
#: geometry so the dropped victim is not re-put before the next
#: consistency check revalidates the payload map.
DETECTION_CASES = [
    (FaultCase(design="Z4/16", kind="stale-walk", at=400, seed=SEED,
               accesses=ACCESSES, lines_per_way=LPW, bit=1),
     ("walk-stale",)),
    (FaultCase(design="Z4/16", kind="drop-relocation", at=400, seed=SEED,
               accesses=ACCESSES, lines_per_way=LPW),
     ("conservation",)),
    (FaultCase(design="Z4/52", kind="misdirect-relocation", at=400,
               seed=SEED, accesses=ACCESSES, lines_per_way=LPW, index=5),
     ("map-desync",)),
    (FaultCase(design="Z4/16", kind="tag-flip", at=400, seed=SEED,
               accesses=ACCESSES, lines_per_way=LPW, bit=1,
               deep_interval=1),
     ("duplicate-tag", "map-desync")),
    (FaultCase(design="Z4/16", kind="drop-eviction-log", at=1000,
               seed=11, accesses=2000, lines_per_way=64, serve=True),
     ("payload-desync",)),
]


def check_no_fault_control() -> str:
    """Golden replays stay violation-free on every design."""
    for design in DESIGNS:
        res = run_replay(design, seed=SEED, accesses=ACCESSES,
                         lines_per_way=LPW, deep_interval=1)
        if res.crashed or res.detector is not None:
            raise AssertionError(
                f"clean {design} replay flagged: {res.detector or res.detail}"
            )
    res = run_serve_replay("Z4/16", seed=SEED, accesses=ACCESSES,
                           lines_per_way=LPW)
    if res.crashed or res.detector is not None:
        raise AssertionError(
            f"clean serve replay flagged: {res.detector or res.detail}"
        )
    return f"{len(DESIGNS)} designs + serve layer, zero violations"


def check_detections() -> str:
    """Every detectable fault kind trips its taxonomy-table detector."""
    for case, expected_kinds in DETECTION_CASES:
        outcome = run_case(case)
        if outcome.classification != "detected":
            raise AssertionError(
                f"{case.key}: expected detected, got "
                f"{outcome.classification} ({outcome.detail})"
            )
        if outcome.detector_kind not in expected_kinds:
            raise AssertionError(
                f"{case.key}: detector kind {outcome.detector_kind!r} "
                f"not in {expected_kinds}"
            )
    return f"{len(DETECTION_CASES)} fault kinds each tripped their invariant"


def check_campaign(jobs: int) -> str:
    """Mini-campaign: planted miss stays silent, structure holds."""
    config = CampaignConfig(base_seed=1, accesses=400, lines_per_way=16,
                            triggers=(0.5,), variants=1)
    outcome = run_campaign(config, jobs=jobs)
    if outcome.errors:
        raise AssertionError(f"campaign case errors: {outcome.errors}")
    cells = outcome.report.cells
    for design in DESIGNS:
        cell = cells[(design, "stamp-corrupt")]
        if cell.get("detected", 0):
            raise AssertionError(
                f"planted miss detected on {design}: {dict(cell)} — "
                "a policy-state invariant now exists; retire the miss "
                "deliberately (see docs/faults.md)"
            )
    for kind in ("drop-relocation", "misdirect-relocation"):
        sa = {cls: n for cls, n in cells[("SA-4", kind)].items() if n}
        if set(sa) != {"benign"}:
            raise AssertionError(f"SA-4 {kind} not benign: {sa}")
        for design in ("Z4/16", "Z4/52"):
            rate = outcome.report.detection_rate(design, kind)
            if rate != 1.0:
                raise AssertionError(
                    f"{design} {kind} detection rate {rate} != 1.0"
                )
    return (f"{len(outcome.outcomes)} cases at jobs={jobs}; planted miss "
            f"silent on all designs; relocation coverage z-only as designed")


def check_faultmin() -> str:
    """faultmin converges on a planted late stamp-corruption."""
    case = FaultCase(design="Z4/16", kind="stamp-corrupt", at=600,
                     seed=SEED, accesses=ACCESSES, lines_per_way=LPW,
                     index=2)
    mini = minimize_case(case, budget=150)
    if mini.classification == "benign":
        raise AssertionError("planted stamp corruption fizzled benign")
    if mini.classification == "detected":
        raise AssertionError(
            f"planted miss detected by {mini.detector} during faultmin"
        )
    if len(mini.plan) != 1:
        raise AssertionError(
            f"faultmin left {len(mini.plan)} events, expected 1"
        )
    event = next(iter(mini.plan))
    if event.at > case.at:
        raise AssertionError(f"shrunk trigger {event.at} > original {case.at}")
    verdict = replay_counterexample(mini.to_dict())
    if not verdict["match"]:
        raise AssertionError(
            f"counterexample replay mismatch: {verdict}"
        )
    return (f"stamp-corrupt at={case.at} -> 1 event at={event.at}, "
            f"{mini.probes} probes, verdict {mini.classification} replays")


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="campaign worker processes (default 2)")
    args = parser.parse_args(argv)

    checks = [
        ("no-fault control", check_no_fault_control),
        ("per-kind detection", check_detections),
        ("mini campaign", lambda: check_campaign(args.jobs)),
        ("faultmin convergence", check_faultmin),
    ]
    t0 = time.perf_counter()
    for name, check in checks:
        start = time.perf_counter()
        try:
            detail = check()
        except AssertionError as exc:
            print(f"FAIL {name}: {exc}")
            return 1
        print(f"ok {name}: {detail} [{time.perf_counter() - start:.1f}s]")
    print(f"faults smoke passed in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
