#!/usr/bin/env python3
"""CI gate: the turbo engine is bit-identical to the reference engine.

Two checks, both exact (no tolerances — the ZTurbo contract is IEEE
bit-identity, not statistical agreement):

1. **Fig. 2** at a reduced scale, run once per engine with a fresh
   observability context each. Compared: the analytic and simulated CDF
   arrays, the KS distances, every eviction priority behind them, and
   the full metrics snapshots (modulo the ``engine_turbo`` /
   ``engine_fallback`` capability gauges — presence keys recording
   which engine ran, not measurements).
2. **A CMP design sweep** (one workload, three designs, LRU) replayed
   through the reference engine serially and through the turbo engine
   both serially and under two worker processes. Compared: the complete
   ``CMPResult.to_dict()`` payloads — miss rates, cycles, per-bank
   counters, eviction priorities, walk statistics.

Exit 0 on identity, 1 with a diff summary otherwise. Scales are small
on purpose: the point is equality, and ``tests/kernels`` fuzzes the
corner cases while ``BENCH_kernels.json`` tracks the speedup.

Usage::

    python scripts/diff_engines.py [--accesses N] [--instructions N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _strip_engine_gauges(snapshot: dict) -> dict:
    """Drop the turbo capability gauges before comparing snapshots."""
    return {
        k: v
        for k, v in snapshot.items()
        if not k.endswith(("engine_turbo", "engine_fallback"))
    }


def diff_fig2(accesses: int, cache_blocks: int) -> list[str]:
    """Mismatch descriptions for the Fig. 2 comparison (empty = identical)."""
    import numpy as np

    from repro.assoc import TrackedPolicy
    from repro.experiments import fig2
    from repro.obs import ObsContext

    runs = {}
    for engine in ("reference", "turbo"):
        obs = ObsContext()
        # Capture every tracker's raw priority stream (fig2 itself only
        # returns the CDF evaluations); creation order is deterministic.
        priorities: list[list[float]] = []
        orig_init = TrackedPolicy.__init__

        def catching_init(self, inner, _p=priorities, _o=orig_init):
            _o(self, inner)
            _p.append(self.priorities)

        TrackedPolicy.__init__ = catching_init
        try:
            result = fig2.run(
                cache_blocks=cache_blocks,
                accesses=accesses,
                seed=0,
                obs=obs,
                engine=engine,
            )
        finally:
            TrackedPolicy.__init__ = orig_init
        runs[engine] = {
            "xs": result.xs,
            "analytic": result.analytic,
            "simulated": result.simulated,
            "priorities": [tuple(p) for p in priorities],
            "metrics": _strip_engine_gauges(obs.metrics.snapshot()),
        }

    ref, turbo = runs["reference"], runs["turbo"]
    problems = []
    if not np.array_equal(ref["xs"], turbo["xs"]):
        problems.append("fig2: xs grids differ")
    for n in ref["analytic"]:
        if not np.array_equal(ref["analytic"][n], turbo["analytic"][n]):
            problems.append(f"fig2: analytic CDF differs for n={n}")
        r_cdf, r_ks = ref["simulated"][n]
        t_cdf, t_ks = turbo["simulated"][n]
        if not np.array_equal(r_cdf, t_cdf):
            problems.append(f"fig2: simulated CDF differs for n={n}")
        if r_ks != t_ks:
            problems.append(f"fig2: KS differs for n={n}: {r_ks!r} != {t_ks!r}")
    if ref["priorities"] != turbo["priorities"]:
        problems.append("fig2: eviction-priority streams differ")
    if ref["metrics"] != turbo["metrics"]:
        diff_keys = [
            k
            for k in sorted(set(ref["metrics"]) | set(turbo["metrics"]))
            if ref["metrics"].get(k) != turbo["metrics"].get(k)
        ]
        problems.append(f"fig2: metric snapshots differ at {diff_keys[:10]}")
    return problems


def diff_sweep(instructions: int) -> list[str]:
    """Mismatch descriptions for the CMP sweep comparison."""
    from repro.assoc import TrackedPolicy
    from repro.experiments.runner import ExperimentScale, run_design_sweep
    from repro.sim import L2DesignConfig

    designs = (
        L2DesignConfig(kind="sa", ways=4, hash_kind="h3"),
        L2DesignConfig(kind="skew", ways=4),
        L2DesignConfig(kind="z", ways=4, levels=2),
    )
    scale = ExperimentScale(instructions_per_core=instructions)

    def payload(engine: str, jobs: int) -> dict:
        sweep = run_design_sweep(
            "canneal",
            designs,
            policies=("lru",),
            scale=scale,
            policy_wrapper=TrackedPolicy,
            jobs=jobs,
            engine=engine,
        )
        return {key: r.to_dict() for key, r in sweep.results.items()}

    reference = payload("reference", jobs=1)
    problems = []
    for label, jobs in (("turbo serial", 1), ("turbo 2-worker", 2)):
        got = payload("turbo", jobs=jobs)
        if got != reference:
            diff_keys = [k for k in reference if got.get(k) != reference[k]]
            problems.append(
                f"sweep: {label} differs from reference at {diff_keys}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=20_000)
    parser.add_argument("--cache-blocks", type=int, default=512)
    parser.add_argument("--instructions", type=int, default=2_000)
    args = parser.parse_args(argv)

    problems = diff_fig2(args.accesses, args.cache_blocks)
    print(f"fig2: {'identical' if not problems else 'MISMATCH'}")
    sweep_problems = diff_sweep(args.instructions)
    print(f"sweep: {'identical' if not sweep_problems else 'MISMATCH'}")
    problems += sweep_problems

    if problems:
        for p in problems:
            print(f"diff_engines: {p}")
        print("diff_engines: engines diverged — turbo must be bit-identical")
        return 1
    print("diff_engines: reference and turbo engines are bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
