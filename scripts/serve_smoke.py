#!/usr/bin/env python3
"""CI gate: the ZServe stack serves real traffic without violations.

Four checks, each exercising a different layer of the serve stack:

1. **Sanitized concurrent replay** — a 2-shard service with every
   array wrapped in the ZSan runtime sanitizer and payload
   fingerprinting on, replaying a workload proxy at concurrency 4.
   Any ``InvariantViolation`` (a walk or commit that broke a zcache
   invariant) or fingerprint mismatch (a corrupted payload) aborts the
   run. Asserts a non-zero hit rate — a smoke that never hits tests
   nothing — and full payload/residency agreement afterwards.
2. **TCP front end** — boots the threaded server on a free port,
   round-trips PUT/GET/DEL/STATS through four concurrent client
   connections, and checks the service-side consistency after.
3. **Naive-mode parity** — the same sequential traffic through
   ``mode="locked"`` lands the same resident set as two-phase mode
   (same geometry, same seeds): the concurrency discipline must not
   change what the cache *does*, only how it locks.
4. **Dynamic lockset checker** — ZRace's Eraser-style sanitizer
   (:mod:`repro.analysis.lockset`) instruments a shard, drives
   threaded traffic through it, and must come back with zero reports;
   then a shard whose ``put`` deliberately skips the lock must be
   flagged as a lockset race. The detector proving it *can* fire is
   what makes its silence on the real shard evidence.

Exit 0 when everything holds, 1 with a message otherwise. Scales are
small on purpose — ``benchmarks/run_serve_baseline.py`` carries the
full-size soak; this is the fast always-on gate.

Usage::

    python scripts/serve_smoke.py [--requests N] [--workers N]
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.sanitizer import make_wrapper  # noqa: E402
from repro.serve.loadgen import LoadGenConfig, run_loadgen  # noqa: E402
from repro.serve.server import ServeClient, ZServeServer  # noqa: E402
from repro.serve.service import ServeConfig, ZServeCache  # noqa: E402


def check_sanitized_replay(requests: int, workers: int) -> str:
    """Fail on any invariant violation / fingerprint mismatch / stall."""
    svc = ZServeCache(
        ServeConfig(
            num_shards=2, num_ways=4, lines_per_way=64,
            mode="twophase", fingerprint=True,
        ),
        wrap_array=make_wrapper(seed=7),
    )
    result = run_loadgen(
        svc,
        LoadGenConfig(
            workload="canneal",
            num_workers=workers,
            requests_per_worker=requests,
            footprint_blocks=1_024,
            seed=7,
            payload_bytes=64,
        ),
    )
    if result.hit_rate <= 0.0:
        raise AssertionError("smoke replay never hit — nothing was tested")
    svc.check_consistency()
    for shard in svc.shards:
        shard.cache.array.final_check()
    return (
        f"replay: {result.requests} req @ {workers} workers, "
        f"hit {result.hit_rate:.3f}, "
        f"{svc.stale_retries} stale retries, 0 violations"
    )


def check_tcp_front_end() -> str:
    """Round-trip the line protocol through concurrent connections."""
    cache = ZServeCache(ServeConfig(num_shards=2, lines_per_way=32))
    errors: list[BaseException] = []

    def hammer(host: str, port: int, base: int) -> None:
        try:
            with ServeClient(host, port) as client:
                for i in range(50):
                    key = f"k{(base * 31 + i) % 150}"
                    client.put(key, f"v{i}")
                    client.get(key)
                assert client.ping()
        except BaseException as exc:  # surfaced below
            errors.append(exc)

    with ZServeServer(cache, port=0) as server:
        server.serve_in_background()
        host, port = server.address
        with ServeClient(host, port) as client:
            client.put("smoke", "1")
            if client.get("smoke") != "1":
                raise AssertionError("PUT/GET round-trip failed")
            if client.delete("smoke") is not True:
                raise AssertionError("DEL of a live key must return True")
        threads = [
            threading.Thread(target=hammer, args=(host, port, t))
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        with ServeClient(host, port) as client:
            stats = client.stats()
        server.shutdown()
    cache.check_consistency()
    return f"tcp: 4 connections, {stats['hits']} hits, consistent"


def check_mode_parity() -> str:
    """Sequential traffic: locked and two-phase land identical state."""
    caches = {
        mode: ZServeCache(ServeConfig(
            num_shards=2, num_ways=4, lines_per_way=32, mode=mode))
        for mode in ("twophase", "locked")
    }
    for svc in caches.values():
        for i in range(600):
            svc.put(i, i * 3)
    resident = {
        mode: {a for s in svc.shards for a in s.cache.resident()}
        for mode, svc in caches.items()
    }
    if resident["twophase"] != resident["locked"]:
        raise AssertionError(
            "mode parity broken: locked and two-phase resident sets "
            f"differ by {len(resident['twophase'] ^ resident['locked'])} "
            "blocks on identical sequential traffic"
        )
    return f"parity: {len(resident['locked'])} resident blocks identical"


def check_lockset() -> str:
    """Dynamic race detection: clean on the real shard, loud on a bad one."""
    from repro.analysis.lockset import (
        instrumented_replay,
        planted_unlocked_replay,
    )

    clean = instrumented_replay(ops=1_000, threads=4, seed=11)
    if clean.reports:
        raise AssertionError(
            "lockset sanitizer reported on the production shard: "
            + "; ".join(r.detail for r in clean.reports)
        )
    planted = planted_unlocked_replay(ops=800, threads=2, seed=11)
    if not planted.reports:
        raise AssertionError(
            "lockset sanitizer did not flag the planted unlocked shard"
        )
    return (
        f"lockset: {clean.accesses} tracked accesses clean, planted "
        f"race flagged ({planted.reports[0].field})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2_500,
                        help="requests per worker in the sanitized replay")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    for check in (
        lambda: check_sanitized_replay(args.requests, args.workers),
        check_tcp_front_end,
        check_mode_parity,
        check_lockset,
    ):
        try:
            print(f"OK  {check()}")
        except BaseException as exc:
            print(f"FAIL {type(exc).__name__}: {exc}")
            return 1
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
