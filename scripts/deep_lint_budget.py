#!/usr/bin/env python3
"""CI guard: ``lint --deep`` stays clean, fast, and incremental.

Four claims are pinned on every push:

1. **Zero findings** — ``src/repro`` is deep-clean under ZS101-ZS113,
   effect and race rules included (the enforcement half of the ZProve
   deal, same as the per-file self-lint).
2. **Cold budget** — a from-scratch whole-program run fits inside a
   wall-time budget, normalized by the same pure-Python calibration
   loop ``scripts/obs_guard.py`` uses, so the bar is meaningful on
   slow shared runners.
3. **Warm budget** — a second run against the cache it just wrote
   analyzes *zero* modules (every fingerprint hits) and runs faster
   than the cold one. This is the incrementality contract: if a
   refactor accidentally invalidates the cache on unchanged trees, CI
   fails here rather than just getting slower.
4. **Effect and race passes engaged** — the default rule set the
   budgets price in includes the interprocedural effect rules
   (ZS105-ZS108) *and* the ZRace lockset rules (ZS110-ZS113), and a
   cache written under a *different* rule set is rejected wholesale: a
   run against a doctored ``rules_hash`` must re-analyze every module.
   Without this, editing a rule could silently replay stale findings
   at warm-run speed.

Usage::

    python scripts/deep_lint_budget.py            # check all three
    python scripts/deep_lint_budget.py --target src/repro
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

#: budgets as multiples of the calibration-loop time (see below); the
#: measured local ratios are ~0.4 cold / ~0.2 warm, so these hold
#: >20x slack for shared CI runners while still catching a
#: quadratic blowup or a cache that stops hitting.
COLD_BUDGET_RATIO = 10.0
WARM_BUDGET_RATIO = 6.0
CALIBRATION_ITERATIONS = 400_000


def calibration(iterations: int = CALIBRATION_ITERATIONS) -> float:
    """Seconds for a pure-Python dict/list churn reference loop."""
    t0 = time.perf_counter()
    d: dict[int, int] = {}
    lst = [0] * 64
    for i in range(iterations):
        k = (i * 2654435761) & 0xFFFF
        d[k] = i
        if len(d) > 4096:
            d.pop(next(iter(d)))
        lst[i & 63] += 1
    return time.perf_counter() - t0


def timed_deep_run(target: Path, cache_path: Path):
    """One ``run_deep`` over ``target``; returns (seconds, report, stats)."""
    from repro.analysis.semantic import run_deep

    t0 = time.perf_counter()
    report, stats = run_deep([target], cache_path=cache_path)
    return time.perf_counter() - t0, report, stats


def check_effect_pass(target: Path, cache_path: Path) -> list[str]:
    """Claim 4: effect/race rules in the default set; hash invalidation."""
    import json

    from repro.analysis.semantic import default_deep_rules, rules_signature

    failures: list[str] = []
    codes = {rule.code for rule in default_deep_rules()}
    effect_codes = {"ZS105", "ZS106", "ZS107", "ZS108"}
    if not effect_codes <= codes:
        failures.append(
            f"effect rules missing from the default deep set: "
            f"{sorted(effect_codes - codes)}"
        )
    race_codes = {"ZS110", "ZS111", "ZS112", "ZS113"}
    if not race_codes <= codes:
        failures.append(
            f"race rules missing from the default deep set: "
            f"{sorted(race_codes - codes)}"
        )

    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    if payload.get("rules_hash") != rules_signature():
        failures.append("cache was not stamped with the active rules hash")
    payload["rules_hash"] = "0" * 16
    cache_path.write_text(json.dumps(payload), encoding="utf-8")
    stale_s, _, stats = timed_deep_run(target, cache_path)
    print(
        f"deep-lint-budget: rules-hash invalidation {stale_s:.3f}s — "
        f"{stats.render()}"
    )
    if stats.modules_analyzed != stats.modules_total:
        failures.append(
            "doctored rules hash did not cold-start the analysis: "
            f"{stats.modules_analyzed}/{stats.modules_total} analyzed"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--target", type=Path, default=REPO_ROOT / "src" / "repro",
        help="tree to analyze (default: src/repro)",
    )
    args = parser.parse_args()

    cal = calibration()
    print(f"deep-lint-budget: calibration {cal:.3f}s")

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "zsan-cache.json"

        cold_s, report, cold = timed_deep_run(args.target, cache_path)
        cold_ratio = cold_s / cal
        print(
            f"deep-lint-budget: cold {cold_s:.3f}s "
            f"(ratio {cold_ratio:.2f}, budget {COLD_BUDGET_RATIO}) — "
            f"{cold.render()}"
        )
        if report.findings:
            rendered = "\n".join(f.render() for f in report.findings)
            failures.append(
                f"{args.target} has deep findings:\n{rendered}"
            )
        if cold.modules_analyzed != cold.modules_total:
            failures.append(
                "cold run was not cold: "
                f"{cold.modules_analyzed}/{cold.modules_total} analyzed"
            )
        if cold_ratio > COLD_BUDGET_RATIO:
            failures.append(
                f"cold run over budget: ratio {cold_ratio:.2f} > "
                f"{COLD_BUDGET_RATIO}"
            )

        warm_s, report, warm = timed_deep_run(args.target, cache_path)
        warm_ratio = warm_s / cal
        print(
            f"deep-lint-budget: warm {warm_s:.3f}s "
            f"(ratio {warm_ratio:.2f}, budget {WARM_BUDGET_RATIO}) — "
            f"{warm.render()}"
        )
        if report.findings:
            failures.append("warm run changed the result (cache unsound)")
        if warm.modules_analyzed != 0:
            failures.append(
                "warm run re-analyzed "
                f"{warm.modules_analyzed} module(s); expected 0 "
                "(cache not incremental)"
            )
        if warm.cache_hits != warm.modules_total:
            failures.append(
                f"warm run hit {warm.cache_hits}/{warm.modules_total} "
                "modules from cache"
            )
        if warm_ratio > WARM_BUDGET_RATIO:
            failures.append(
                f"warm run over budget: ratio {warm_ratio:.2f} > "
                f"{WARM_BUDGET_RATIO}"
            )

        failures.extend(check_effect_pass(args.target, cache_path))

    if failures:
        for failure in failures:
            print(f"deep-lint-budget: FAIL: {failure}")
        return 1
    print("deep-lint-budget: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
