#!/usr/bin/env python3
"""Measure the serial-vs-parallel sweep baseline for EXPERIMENTS.md.

Times the ISSUE's reference sweep — 4 workloads x the 6 Fig. 4 designs
under LRU — once serially and once with ``--jobs N``, verifies the two
runs are bit-identical, and records the measurement (with the host CPU
count, which bounds the attainable speedup) in
``benchmarks/parallel_sweep_baseline.json``.

Not collected by pytest (``run_`` prefix, and ``testpaths`` only covers
``tests/``); run it by hand when re-baselining::

    python benchmarks/run_parallel_baseline.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.experiments.parallel import default_jobs, run_parallel_sweeps
from repro.experiments.runner import DESIGNS_FIG4, ExperimentScale

WORKLOADS = ("blackscholes", "ammp", "canneal", "cactusADM")
OUT = Path(__file__).with_name("parallel_sweep_baseline.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--instructions", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    scale = ExperimentScale(
        instructions_per_core=args.instructions,
        workloads=WORKLOADS,
        seed=args.seed,
    )
    runs = {}
    results = {}
    for label, jobs in (("serial", 1), ("parallel", args.jobs)):
        t0 = time.perf_counter()
        outcome = run_parallel_sweeps(
            workloads=WORKLOADS, designs=DESIGNS_FIG4, scale=scale, jobs=jobs
        )
        runs[label] = time.perf_counter() - t0
        results[label] = {
            w: outcome.sweeps[w].results for w in WORKLOADS
        }
        assert not outcome.failed and not outcome.degraded
    identical = results["serial"] == results["parallel"]
    payload = {
        "description": (
            "Serial-vs-parallel wall time for the reference sweep (4 "
            "workloads x 6 Fig.4 designs, LRU). The attainable speedup "
            "is bounded by host_cpus (capture runs once in the parent; "
            "only replays parallelise). Regenerate with `python "
            "benchmarks/run_parallel_baseline.py --jobs N`."
        ),
        "workloads": list(WORKLOADS),
        "designs": [d.label() for d in DESIGNS_FIG4],
        "instructions_per_core": args.instructions,
        "seed": args.seed,
        "jobs": args.jobs,
        "host_cpus": default_jobs(),
        "serial_seconds": round(runs["serial"], 3),
        "parallel_seconds": round(runs["parallel"], 3),
        "speedup": round(runs["serial"] / runs["parallel"], 3),
        "bit_identical": identical,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    return 0 if identical else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
