"""Bench: regenerate Fig. 4 (MPKI and IPC improvements, OPT and LRU)."""

from repro.experiments import fig4


def test_fig4_mpki_ipc_improvements(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig4.run,
        kwargs={"scale": bench_scale, "policies": ("opt", "lru")},
        iterations=1,
        rounds=1,
    )
    print("Fig.4 (reduced roster): sorted improvement series")
    for s in sorted(result.series, key=lambda s: (s.metric, s.policy, s.design)):
        print("  " + s.row())

    # Shape claims (paper Section VI-B):
    for policy in ("opt", "lru"):
        z16 = result.get("mpki", policy, "Z4/16-S").geomean()
        sa16 = result.get("mpki", policy, "SA-16h-S").geomean()
        z52 = result.get("mpki", policy, "Z4/52-S").geomean()
        # Same candidate count -> practically the same MPKI improvement.
        assert abs(z16 - sa16) < 0.05
        # More candidates never hurt the geomean materially.
        assert z52 > z16 - 0.03
        # zcaches keep the baseline's latency: IPC never collapses.
        assert min(result.get("ipc", policy, "Z4/52-S").values()) > 0.95
