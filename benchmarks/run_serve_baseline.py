#!/usr/bin/env python3
"""Record the ZServe throughput trajectory into ``BENCH_serve.json``.

Replays one workload proxy through the load generator against three
backends at 1, 2 and 4 worker threads (median of five rounds each):

- ``sharded`` — the real service: hash-partitioned ``TwoPhaseZCache``
  shards, lock-free reads, walks off-lock, commits under per-shard
  locks;
- ``single-lock`` — the naive port: one shard holding one lock across
  every operation, reads included (``mode="locked"``);
- ``dict-lru`` — a plain ``OrderedDict`` + LRU + one lock, the
  strawman any service starts from (no zcache semantics at all).

Both zcache backends get the same *total* capacity, so the comparison
isolates the locking discipline. The default workload is read-heavy
at a high hit rate — the regime a cache service actually runs in, and
the one where the disciplines differ: the sharded service answers
>95% of requests without touching a lock. (On a single-CPU runner the
GIL serialises all Python work, so the win is bounded by the per-read
locking overhead; with true hardware parallelism the single lock
additionally serialises all shards' walks.)

Asserts the sharded service beats the single-lock one at 2 and 4
workers, then runs the acceptance soak — 4 threads, >= 100k requests
over sanitized shards with payload fingerprinting on, zero
``InvariantViolation`` tolerated — and appends one entry to
``benchmarks/BENCH_serve.json``. The file is committed: successive
entries form the persistent trajectory the README quotes.

Not collected by pytest (``run_`` prefix, and ``testpaths`` only covers
``tests/``); run it by hand when the serve layer changes materially::

    python benchmarks/run_serve_baseline.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
from pathlib import Path

from repro.analysis.sanitizer import make_wrapper
from repro.serve.baseline import DictLRUServe
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.service import ServeConfig, ZServeCache

OUT = Path(__file__).with_name("BENCH_serve.json")

#: per-shard geometry; the single-lock baseline folds all shards'
#: lines into one so total capacity matches
NUM_WAYS = 4
LINES_PER_WAY = 256
LEVELS = 2


def make_backend(kind: str, shards: int):
    """A fresh backend of the requested kind (equal total capacity)."""
    if kind == "sharded":
        return ZServeCache(ServeConfig(
            num_shards=shards, num_ways=NUM_WAYS,
            lines_per_way=LINES_PER_WAY, levels=LEVELS, mode="twophase",
        ))
    if kind == "single-lock":
        return ZServeCache(ServeConfig(
            num_shards=1, num_ways=NUM_WAYS,
            lines_per_way=LINES_PER_WAY * shards, levels=LEVELS,
            mode="locked",
        ))
    if kind == "dict-lru":
        return DictLRUServe(capacity=shards * NUM_WAYS * LINES_PER_WAY)
    raise ValueError(kind)


def measure(kinds: tuple, shards: int, workers: int, base: LoadGenConfig,
            rounds: int) -> list[dict]:
    """Median-of-``rounds`` replay of ``base`` against every kind.

    Rounds are *interleaved* across the contenders (A B C, A B C, ...)
    so slow drift in the host's effective speed — very real on shared
    single-CPU runners — lands on every backend equally instead of
    favouring whichever ran last. Each round gets a cold backend, and
    a consistency check runs after every zcache round.
    """
    per_kind: dict[str, list] = {kind: [] for kind in kinds}
    for _ in range(rounds):
        for kind in kinds:
            backend = make_backend(kind, shards)
            cfg = LoadGenConfig(
                workload=base.workload,
                num_workers=workers,
                requests_per_worker=base.requests_per_worker,
                footprint_blocks=base.footprint_blocks,
                seed=base.seed,
            )
            per_kind[kind].append(run_loadgen(backend, cfg))
            if isinstance(backend, ZServeCache):
                backend.check_consistency()
    rows = []
    for kind in kinds:
        results = sorted(per_kind[kind], key=lambda r: r.throughput_rps)
        out = results[len(results) // 2].to_dict()
        out["throughput_rps"] = round(
            statistics.median(r.throughput_rps for r in results), 1)
        out["p99_us"] = round(
            statistics.median(r.p99_us for r in results), 2)
        out["backend_kind"] = kind
        out["rounds"] = rounds
        rows.append(out)
    return rows


def soak(shards: int, workers: int, requests_per_worker: int, seed: int) -> dict:
    """The sanitized acceptance soak: every walk checked, zero tolerance.

    Payload fingerprinting is on (every read re-verifies its value's
    digest) and the array is wrapped in the ZSan sanitizer. Any
    ``InvariantViolation`` or fingerprint mismatch escapes
    ``run_loadgen`` (it re-raises the first worker exception) and
    aborts the benchmark with a traceback.
    """
    svc = ZServeCache(
        ServeConfig(
            num_shards=shards, num_ways=NUM_WAYS,
            lines_per_way=LINES_PER_WAY, levels=LEVELS,
            mode="twophase", fingerprint=True,
        ),
        wrap_array=make_wrapper(seed=seed),
    )
    result = run_loadgen(
        svc,
        LoadGenConfig(
            workload="canneal",
            num_workers=workers,
            requests_per_worker=requests_per_worker,
            footprint_blocks=2_048,
            seed=seed,
            payload_bytes=256,
        ),
    )
    svc.check_consistency()
    for shard in svc.shards:
        shard.cache.array.final_check()
    snap = svc.snapshot()
    return {
        "workers": workers,
        "requests": result.requests,
        "throughput_rps": round(result.throughput_rps, 1),
        "hit_rate": round(result.hit_rate, 4),
        "stale_retries": snap["stale_retries"],
        "walk_races": snap["walk_races"],
        "fallback_fills": snap["fallback_fills"],
        "violations": 0,  # reaching this line means none were raised
    }


def git_head() -> str:
    """The current commit id, or 'unknown' outside a work tree."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="blackscholes",
                        help="read-heavy, cache-friendly proxy (default)")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--requests", type=int, default=10_000,
                        help="requests per worker per round")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--soak-requests", type=int, default=25_000,
                        help="requests per worker in the sanitized soak")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    base = LoadGenConfig(
        workload=args.workload,
        requests_per_worker=args.requests,
        footprint_blocks=2_048,
        seed=args.seed,
    )
    # Warm-up (allocator, page cache) before anything is timed.
    run_loadgen(make_backend("sharded", args.shards), LoadGenConfig(
        workload=args.workload, num_workers=2, requests_per_worker=2_000,
        footprint_blocks=2_048, seed=args.seed))

    runs = []
    for workers in (1, 2, 4):
        for row in measure(("sharded", "single-lock", "dict-lru"),
                           args.shards, workers, base, args.rounds):
            runs.append(row)
            print(
                f"{row['backend_kind']:>12} x{workers}: "
                f"{row['throughput_rps']:>10.0f} req/s  "
                f"p50 {row['p50_us']:.1f}us  p99 {row['p99_us']:.1f}us  "
                f"hit {row['hit_rate']:.3f}"
            )

    by = {(r["backend_kind"], r["workers"]): r for r in runs}
    for workers in (2, 4):
        sharded = by[("sharded", workers)]["throughput_rps"]
        single = by[("single-lock", workers)]["throughput_rps"]
        if sharded <= single:
            print(
                f"BENCH ABORTED: sharded ({sharded:.0f} req/s) did not beat "
                f"single-lock ({single:.0f} req/s) at {workers} workers"
            )
            return 1

    soak_workers = 4
    print(f"soak: {soak_workers} workers x {args.soak_requests} sanitized "
          "fingerprinted requests ...")
    soak_row = soak(2, soak_workers, args.soak_requests, args.seed)
    assert soak_row["requests"] >= 100_000, "soak must cover >=100k requests"
    print(f"soak: {soak_row['requests']} requests, "
          f"{soak_row['stale_retries']} stale retries, 0 violations")

    entry = {
        "commit": git_head(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "workload": args.workload,
        "shards": args.shards,
        "geometry": {
            "num_ways": NUM_WAYS,
            "lines_per_way": LINES_PER_WAY,
            "levels": LEVELS,
        },
        "runs": runs,
        "soak": soak_row,
    }
    history = []
    if OUT.exists():
        history = json.loads(OUT.read_text(encoding="utf-8"))
    history.append(entry)
    OUT.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    speedup = (by[("sharded", 4)]["throughput_rps"]
               / by[("single-lock", 4)]["throughput_rps"])
    print(f"recorded to {OUT.name}: sharded is {speedup:.2f}x single-lock "
          "at 4 workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
