"""Ablation bench: BFS vs DFS walk strategy, repeat filters, early stop.

DESIGN.md calls out these design choices; the paper argues (Section
III-D) that BFS needs fewer relocations per candidate than DFS and that
repeat filtering only matters for small caches. This bench quantifies
both on the same traffic.
"""

import random

from repro.core import Cache, ZCacheArray
from repro.replacement import LRU


def run_traffic(arr, accesses=15_000, footprint=6_000, seed=7):
    cache = Cache(arr, LRU())
    rng = random.Random(seed)
    for _ in range(accesses):
        cache.access(rng.randrange(footprint))
    return cache


def test_bfs_vs_dfs_relocations(benchmark):
    def ablation():
        bfs = ZCacheArray(4, 256, levels=3, strategy="bfs", hash_seed=3)
        dfs = ZCacheArray(4, 256, levels=3, strategy="dfs", hash_seed=3, seed=5)
        run_traffic(bfs)
        run_traffic(dfs)
        return bfs.stats, dfs.stats

    bfs_stats, dfs_stats = benchmark.pedantic(ablation, iterations=1, rounds=1)
    print("Walk-strategy ablation (Z4, 3 levels):")
    for name, st in (("BFS", bfs_stats), ("DFS", dfs_stats)):
        print(
            f"  {name}: candidates/walk={st.mean_candidates_per_walk:5.1f} "
            f"relocations/walk={st.mean_relocations_per_walk:.2f} "
            f"tag reads/walk={st.tag_reads / max(st.walks, 1):.1f}"
        )
    # Paper: DFS pays more relocations for a given candidate count.
    assert (
        dfs_stats.mean_relocations_per_walk
        > bfs_stats.mean_relocations_per_walk
    )


def test_repeat_filter_ablation(benchmark):
    def ablation():
        out = {}
        for filt in (None, "exact", "bloom"):
            arr = ZCacheArray(
                2, 16, levels=4, repeat_filter=filt, hash_seed=9
            )
            run_traffic(arr, accesses=6_000, footprint=400)
            out[filt] = arr.stats
        return out

    stats = benchmark.pedantic(ablation, iterations=1, rounds=1)
    print("Repeat-filter ablation (tiny Z2, 4 levels):")
    for filt, st in stats.items():
        print(
            f"  filter={str(filt):5s}: candidates/walk="
            f"{st.mean_candidates_per_walk:5.2f} repeats/walk="
            f"{st.repeats / max(st.walks, 1):.2f}"
        )
    # Filters prune expansion: fewer candidates examined per walk.
    assert (
        stats["exact"].mean_candidates_per_walk
        <= stats[None].mean_candidates_per_walk
    )


def test_early_stop_ablation(benchmark):
    def ablation():
        out = {}
        for limit in (None, 24, 8):
            arr = ZCacheArray(
                4, 256, levels=3, candidate_limit=limit, hash_seed=11
            )
            cache = run_traffic(arr)
            out[limit] = (arr.stats, cache.stats)
        return out

    results = benchmark.pedantic(ablation, iterations=1, rounds=1)
    print("Early-stop (bandwidth pressure) ablation (Z4/52):")
    for limit, (wstats, cstats) in results.items():
        print(
            f"  limit={str(limit):4s}: tag reads/walk="
            f"{wstats.tag_reads / max(wstats.walks, 1):5.1f} "
            f"miss rate={cstats.miss_rate:.4f}"
        )
    full = results[None][0]
    capped = results[8][0]
    # Early stop trades candidates (associativity) for tag bandwidth.
    assert capped.tag_reads / capped.walks < full.tag_reads / full.walks
