#!/usr/bin/env python3
"""Record the ZTurbo benchmark trajectory into ``BENCH_kernels.json``.

Times the full-scale Fig. 2 experiment (2048 blocks, 60k accesses per
candidate count — the hot loop the kernels were built for) on both
engines, asserts the simulated curves come out bit-identical, and
appends one measurement entry to ``benchmarks/BENCH_kernels.json``. The
file is committed: successive entries form the persistent trajectory
the README quotes and reviewers can diff.

Not collected by pytest (``run_`` prefix, and ``testpaths`` only covers
``tests/``); run it by hand when the kernels change materially::

    python benchmarks/run_kernel_baseline.py
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.experiments.fig2 import run as fig2_run

OUT = Path(__file__).with_name("BENCH_kernels.json")


def timed_run(engine: str, accesses: int, cache_blocks: int):
    """(seconds, Fig2Result) for one full-scale run on ``engine``."""
    t0 = time.perf_counter()
    result = fig2_run(
        cache_blocks=cache_blocks, accesses=accesses, seed=0, engine=engine
    )
    return time.perf_counter() - t0, result


def identical(a, b) -> bool:
    """True when two Fig2Results carry bit-identical simulated curves."""
    return all(
        np.array_equal(a.simulated[n][0], b.simulated[n][0])
        and a.simulated[n][1] == b.simulated[n][1]
        for n in a.simulated
    )


def git_head() -> str:
    """The current commit id, or 'unknown' outside a work tree."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=60_000)
    parser.add_argument("--cache-blocks", type=int, default=2048)
    parser.add_argument("--rounds", type=int, default=2)
    args = parser.parse_args(argv)

    timed_run("turbo", args.accesses // 10, args.cache_blocks)  # warm-up
    ref_times, turbo_times = [], []
    for _ in range(args.rounds):
        ref_s, ref = timed_run("reference", args.accesses, args.cache_blocks)
        turbo_s, turbo = timed_run("turbo", args.accesses, args.cache_blocks)
        if not identical(ref, turbo):
            print("BENCH ABORTED: engines disagree — fix before benchmarking")
            return 1
        ref_times.append(ref_s)
        turbo_times.append(turbo_s)

    ref_s, turbo_s = min(ref_times), min(turbo_times)
    entry = {
        "date": time.strftime("%Y-%m-%d"),
        "commit": git_head(),
        "workload": {
            "experiment": "fig2",
            "cache_blocks": args.cache_blocks,
            "accesses_per_n": args.accesses,
        },
        "reference_seconds": round(ref_s, 3),
        "turbo_seconds": round(turbo_s, 3),
        "speedup": round(ref_s / turbo_s, 2),
        "bit_identical": True,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    history = json.loads(OUT.read_text()) if OUT.exists() else []
    history.append(entry)
    OUT.write_text(json.dumps(history, indent=2) + "\n")
    print(
        f"fig2 reference {ref_s:.2f}s  turbo {turbo_s:.2f}s  "
        f"speedup {entry['speedup']}x  -> {OUT.name}"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
