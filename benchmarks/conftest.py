"""Shared fixtures and scales for the benchmark harness.

Each benchmark regenerates one paper artifact at a reduced scale
(pytest-benchmark measures the harness; the printed rows are the
artifact). Environment knob ``REPRO_BENCH_INSTRUCTIONS`` scales the
simulated instruction count (default 1500/core, full reproduction used
6000/core — see EXPERIMENTS.md).
"""

import os

import pytest

from repro.experiments.runner import ExperimentScale

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "1500"))

#: small representative roster: one latency-bound, one hit-heavy, one
#: associativity-sensitive, one miss-intensive, one mix
BENCH_WORKLOADS = ("blackscholes", "ammp", "cactusADM", "canneal", "cpu2K6rand0")


@pytest.fixture
def bench_scale():
    return ExperimentScale(
        instructions_per_core=BENCH_INSTRUCTIONS,
        workloads=BENCH_WORKLOADS,
        seed=1,
    )
