"""Bench: regenerate Fig. 1 (the replacement process walkthrough)."""

from repro.experiments import fig1


def test_fig1_replacement_process(benchmark):
    result = benchmark.pedantic(fig1.run, kwargs={"seed": 4}, iterations=1,
                                rounds=1)
    for line in result.rows():
        print(line)
    assert result.candidates_per_level == {0: 3, 1: 6, 2: 12}
    assert result.total_candidates == 21  # paper: 3 + 6 + 12
    assert result.walk_cycles == 12  # paper Fig. 1g
    assert result.timeline.hidden  # finishes under the memory fetch
