"""Bench: Section VI-D (L2 tag-array bandwidth, self-throttling)."""

from repro.experiments import bandwidth


def test_bandwidth_self_throttling(benchmark, bench_scale):
    points = benchmark.pedantic(
        bandwidth.run, kwargs={"scale": bench_scale}, iterations=1, rounds=1
    )
    print("Section VI-D (reduced): Z4/52 L2 bank load")
    for p in sorted(points, key=lambda p: p.misses_per_cycle_per_bank):
        print("  " + p.row())
    # Tag bandwidth stays far from saturation (1 access/cycle/bank).
    assert max(p.tag_load_per_bank for p in points) < 0.8
    # The walk inflates tag traffic but not unboundedly (<= R per miss).
    for p in points:
        assert p.tag_load_per_bank >= p.demand_load_per_bank
