#!/usr/bin/env python3
"""Record the ZFault campaign baseline into ``BENCH_faults.json``.

Runs the full default campaign — every fault kind x all four designs
(Z4/16, Z4/52, SA-4, SK-4) x three trigger points x two location
variants, 2000 accesses per replay, the serve-layer drop-eviction-log
kind on the zcache designs — on the parallel driver, then faultmin on
one representative non-benign case per (design, kind) cell, then a
replay pass over every emitted counterexample.

Before writing anything it re-asserts the acceptance structure:

- relocation faults 100% detected on the zcache designs, benign on
  SA-4 (no relocation machinery);
- ``stale-walk`` 100% detected on every design that walks;
- ``stamp-corrupt`` — the planted detector miss — detected *nowhere*,
  with at least one silent divergence somewhere (the hole is real and
  measurable, not just unexercised);
- every minimal counterexample replays to its recorded verdict, and
  the counterexample set spans at least two fault kinds.

The campaign is seeded end-to-end, so the written tables and
counterexamples are deterministic: regenerating on the same code
changes only the wall-clock fields under ``meta``, and any other diff
under review is a real behavior change. The file is committed;
EXPERIMENTS.md and docs/faults.md quote its structure.

Not collected by pytest (``run_`` prefix, and ``testpaths`` only
covers ``tests/``); run it by hand when the fault layer, the
invariant registry, or the designs change materially::

    python benchmarks/run_faults_baseline.py [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.campaign import (  # noqa: E402
    CampaignConfig,
    build_cases,
    run_campaign,
)
from repro.faults.faultmin import (  # noqa: E402
    minimize_case,
    replay_counterexample,
)
from repro.faults.harness import DESIGNS  # noqa: E402

OUT = Path(__file__).with_name("BENCH_faults.json")

#: faultmin probe budget per representative case
BUDGET = 200


def assert_structure(report) -> None:
    """The acceptance shape of the campaign table (fail loudly)."""
    for kind in ("drop-relocation", "misdirect-relocation"):
        for design in ("Z4/16", "Z4/52"):
            rate = report.detection_rate(design, kind)
            assert rate == 1.0, f"{design} {kind} detection {rate} != 1.0"
        sa = {c: n for c, n in report.cells[("SA-4", kind)].items() if n}
        assert set(sa) == {"benign"}, f"SA-4 {kind} not benign: {sa}"
    for design in DESIGNS:
        rate = report.detection_rate(design, "stale-walk")
        assert rate == 1.0, f"{design} stale-walk detection {rate} != 1.0"
        cell = report.cells[(design, "stamp-corrupt")]
        assert cell.get("detected", 0) == 0, (
            f"planted miss detected on {design}: {dict(cell)}"
        )
    silent = sum(
        report.cells[(d, "stamp-corrupt")].get("silent-wrong-victim", 0)
        + report.cells[(d, "stamp-corrupt")].get("silent-mpki-drift", 0)
        for d in DESIGNS
    )
    assert silent > 0, "planted miss never even diverged — not exercised"


def pick_representatives(outcome, cases) -> list:
    """One non-benign case per (design, kind), campaign order."""
    by_key = {case.key: case for case in cases}
    picked: dict = {}
    for key, result in outcome.outcomes.items():
        if result.classification == "benign" or key not in by_key:
            continue
        picked.setdefault((result.design, result.kind), by_key[key])
    return [case for _, case in sorted(picked.items())]


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: available CPUs)")
    parser.add_argument("--out", type=str, default=str(OUT))
    args = parser.parse_args(argv)

    config = CampaignConfig()
    t0 = time.perf_counter()
    outcome = run_campaign(config, jobs=args.jobs)
    campaign_s = time.perf_counter() - t0
    assert not outcome.errors, f"campaign case errors: {outcome.errors}"
    print(f"campaign: {len(outcome.outcomes)} cases in {campaign_s:.1f}s")
    print(outcome.report.render())
    assert_structure(outcome.report)

    t1 = time.perf_counter()
    counterexamples = []
    for case in pick_representatives(outcome, build_cases(config)):
        ce = minimize_case(case, budget=BUDGET)
        counterexamples.append(ce.to_dict())
        print(
            f"faultmin: {case.design} {case.kind}: {ce.original_events} -> "
            f"{ce.minimized_events} event(s), {ce.probes} probes, "
            f"verdict {ce.classification}"
        )
    faultmin_s = time.perf_counter() - t1

    kinds = {ce["case"]["kind"] for ce in counterexamples}
    assert len(kinds) >= 2, f"counterexamples span only {kinds}"
    for i, entry in enumerate(counterexamples):
        verdict = replay_counterexample(entry)
        assert verdict["match"], f"counterexample {i} failed replay: {verdict}"
    print(f"replayed {len(counterexamples)} counterexamples, all match")

    payload = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "campaign_seconds": round(campaign_s, 1),
            "faultmin_seconds": round(faultmin_s, 1),
            "jobs": args.jobs or "auto",
        },
        "config": {
            "base_seed": config.base_seed,
            "accesses": config.accesses,
            "lines_per_way": config.lines_per_way,
            "triggers": list(config.triggers),
            "variants": config.variants,
            "cases": len(outcome.outcomes),
        },
        "campaign": outcome.report.to_dict(),
        "counterexamples": counterexamples,
    }
    out_path = Path(args.out)
    with out_path.open("w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
