"""Bench: regenerate Table II (timing/area/power of cache designs)."""

from repro.energy import table2_rows
from repro.experiments import table2


def test_table2_rows(benchmark):
    rows = benchmark(table2_rows, 1 << 20, 1.0)
    print("Table II (1 MB bank):")
    for row in rows:
        print("  " + row.format())
    checks = table2.checks()
    assert abs(checks.serial_hit_ratio_32_vs_4 - 2.0) < 0.1
    assert abs(checks.parallel_hit_ratio_32_vs_4 - 3.3) < 0.2
    assert abs(checks.area_ratio_32_vs_4 - 1.22) < 0.03
    assert checks.z52_keeps_4way_hit_energy
    assert 1.0 < checks.z52_vs_sa32_miss_energy < 1.7
