"""Bench: regenerate Fig. 5 (IPC and BIPS/W, serial vs parallel lookups)."""

from repro.experiments import fig5


def test_fig5_ipc_and_efficiency(benchmark, bench_scale):
    cells = benchmark.pedantic(
        fig5.run,
        kwargs={"scale": bench_scale, "policies": ("lru",)},
        iterations=1,
        rounds=1,
    )
    print("Fig.5 (reduced roster): IPC and BIPS/W vs serial SA-4h")
    for cell in cells:
        print("  " + cell.row())

    def geo(design, metric):
        for c in cells:
            if c.design == design and c.group == "geomean-all":
                return getattr(c, metric)
        raise KeyError(design)

    # Parallel lookup helps IPC (lower hit latency) at the same design.
    assert geo("SA-4h-P", "ipc_improvement") >= geo(
        "SA-4h-S", "ipc_improvement"
    ) - 1e-9
    # 32-way parallel pays a large hit-energy premium; the zcache keeps
    # 4-way hit energy, so its efficiency must beat SA-32-parallel.
    assert geo("Z4/52-P", "bips_per_watt_improvement") > geo(
        "SA-32h-P", "bips_per_watt_improvement"
    )
