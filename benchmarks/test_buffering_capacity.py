"""Ablation bench: pinnable capacity across designs (Section I claim).

The paper's motivation: buffering/pinning systems (TM, speculation,
replay) need associativity to hold their block sets without falling
back. This bench measures how much of each design's capacity can be
pinned before the first overflow.
"""

import random

from repro.core import Cache, SetAssociativeArray, SkewAssociativeArray, ZCacheArray
from repro.replacement import LRU

BLOCKS = 512


def pinnable(array_factory, seed):
    cache = Cache(array_factory(seed), LRU())
    rng = random.Random(seed)
    pinned = 0
    while True:
        result = cache.access(rng.randrange(1 << 30), is_write=True)
        if result.bypassed:
            return pinned
        cache.pin(result.address)
        pinned += 1


def test_pinnable_capacity_by_design(benchmark):
    designs = {
        "SA-4h": lambda s: SetAssociativeArray(
            4, BLOCKS // 4, hash_kind="h3", hash_seed=s
        ),
        "SK-4": lambda s: SkewAssociativeArray(4, BLOCKS // 4, hash_seed=s),
        "Z4/16": lambda s: ZCacheArray(4, BLOCKS // 4, levels=2, hash_seed=s),
        "Z4/52": lambda s: ZCacheArray(4, BLOCKS // 4, levels=3, hash_seed=s),
    }

    def sweep():
        return {
            name: sum(pinnable(f, seed) for seed in range(3)) / 3
            for name, f in designs.items()
        }

    result = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("Pinnable blocks before overflow (512-block caches):")
    for name, mean in result.items():
        print(f"  {name:8s} {mean:6.0f} ({mean / BLOCKS:5.1%} of capacity)")
    # The paper's ordering: candidates, not ways, set buffering capacity.
    assert result["SA-4h"] < result["SK-4"] < result["Z4/16"] < result["Z4/52"]
    assert result["Z4/52"] > 0.8 * BLOCKS