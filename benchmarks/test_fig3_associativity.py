"""Bench: regenerate Fig. 3 (associativity distributions of real caches)."""

from repro.experiments import fig3
from repro.experiments.runner import ExperimentScale

from conftest import BENCH_INSTRUCTIONS


def test_fig3_associativity_distributions(benchmark):
    scale = ExperimentScale(instructions_per_core=max(3000, BENCH_INSTRUCTIONS))
    cells = benchmark.pedantic(
        fig3.run,
        kwargs={"scale": scale, "workloads": ("wupwise", "mgrid", "blackscholes")},
        iterations=1,
        rounds=1,
    )
    print("Fig.3 (reduced): eviction-priority summaries")
    for cell in cells:
        print(cell.row())

    def mean_ks(panel_prefix):
        sel = [
            c.distribution.ks_to_uniformity(c.candidates)
            for c in cells
            if c.panel.startswith(panel_prefix)
        ]
        return sum(sel) / len(sel)

    # Paper ordering: skew ~ uniformity, hashed SA better than plain SA.
    assert mean_ks("c:") < mean_ks("b:") < mean_ks("a:")
