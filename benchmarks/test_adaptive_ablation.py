"""Ablation bench: adaptive associativity (paper Section VIII).

Compares a fixed Z4/52 against the AdaptiveZCache on phase-changing
traffic (streaming phases, where associativity is useless, alternating
with reuse phases, where it pays). The adaptive controller should match
the fixed design's miss rate while spending far fewer walk tag reads on
the streaming phases.
"""

import itertools

from repro.core import AdaptiveZCache, Cache, ZCacheArray
from repro.replacement import LRU
from repro.workloads.patterns import mixed, sequential_scan, zipf

LINES = 256
PHASE = 20_000


def phased_trace():
    """Alternating stream / reuse phases."""
    stream = sequential_scan(LINES * 16)
    reuse = mixed(
        [(0.5, zipf(LINES * 8, skew=1.2, seed=1)),
         (0.5, sequential_scan(LINES * 5))],
        seed=2,
    )
    for phase in range(4):
        src = stream if phase % 2 == 0 else reuse
        yield from itertools.islice(src, PHASE)


def test_adaptive_vs_fixed(benchmark):
    def ablation():
        fixed = Cache(ZCacheArray(4, LINES, levels=3, hash_seed=3), LRU())
        adaptive = AdaptiveZCache(
            ZCacheArray(4, LINES, levels=3, hash_seed=3), LRU(),
            epoch_misses=256,
        )
        for addr in phased_trace():
            fixed.access(addr)
        for addr in phased_trace():
            adaptive.access(addr)
        return fixed, adaptive

    fixed, adaptive = benchmark.pedantic(ablation, iterations=1, rounds=1)
    fixed_reads = fixed.stats.walk_tag_reads / fixed.stats.misses
    adaptive_reads = adaptive.stats.walk_tag_reads / adaptive.stats.misses
    print("Adaptive-associativity ablation (phased stream/reuse traffic):")
    print(
        f"  fixed Z4/52 : miss rate={fixed.stats.miss_rate:.4f} "
        f"walk tag reads/miss={fixed_reads:5.1f}"
    )
    print(
        f"  adaptive    : miss rate={adaptive.stats.miss_rate:.4f} "
        f"walk tag reads/miss={adaptive_reads:5.1f} "
        f"(limit history: {[h[1] for h in adaptive.adaptive_stats.history[:12]]}...)"
    )
    # Near-equal miss rate at materially lower walk bandwidth.
    assert adaptive.stats.miss_rate < fixed.stats.miss_rate + 0.02
    assert adaptive_reads < 0.8 * fixed_reads
