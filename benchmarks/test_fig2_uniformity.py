"""Bench: regenerate Fig. 2 (uniformity-assumption CDF curves)."""

from repro.experiments import fig2


def test_fig2_uniformity_curves(benchmark):
    result = benchmark.pedantic(
        fig2.run,
        kwargs={"cache_blocks": 1024, "accesses": 20_000},
        iterations=1,
        rounds=1,
    )
    for line in result.rows():
        print(line)
    # The random-candidates validation must track the analytic curves.
    for n in fig2.CANDIDATE_COUNTS:
        assert result.simulated[n][1] < 0.15
