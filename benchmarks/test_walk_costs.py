"""Bench: Section III-B figures of merit (R, T_walk, E_miss)."""

from repro.experiments import merit


def test_walk_figures_of_merit(benchmark):
    rows = benchmark.pedantic(
        merit.run,
        kwargs={"accesses": 12_000},
        iterations=1,
        rounds=1,
    )
    print("Section III-B figures of merit:")
    for row in rows:
        print("  " + row.row())
    by_cfg = {(r.ways, r.levels): r for r in rows}
    # R formula: paper configurations.
    assert by_cfg[(4, 2)].r_formula == 16
    assert by_cfg[(4, 3)].r_formula == 52
    # Measured candidates fall short of R only through repeats/empties.
    for r in rows:
        assert r.r_measured <= r.r_formula + 1e-9
        assert r.r_measured > 0.85 * r.r_formula
    # E_miss grows with candidates; relocations bounded by L-1.
    assert by_cfg[(4, 3)].e_miss_nj > by_cfg[(4, 2)].e_miss_nj
    for r in rows:
        assert r.mean_relocations <= r.levels - 1
    # Paper's Fig. 1g example: 21 candidates in 12 cycles.
    assert merit.walk_latency_cycles(3, 3, t_tag=4) == 12
